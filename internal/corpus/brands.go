package corpus

// BrandInfo describes an impersonated organization.
type BrandInfo struct {
	Name     string
	Category ScamType // the scam category the brand belongs to
	Slug     string   // domain-name fragment used in phishing hosts
}

// brandsByScamCountry maps (scam type, country) to weighted brand pools.
// Weights shape Table 12: Indian financial institutions dominate because
// banking+IND is the heaviest cell of the joint distribution.
var brandsByScamCountry = map[ScamType]map[string]*weighted[BrandInfo]{
	ScamBanking: {
		"IND": newWeighted[BrandInfo]().
			add(BrandInfo{"State Bank of India", ScamBanking, "sbi"}, 55).
			add(BrandInfo{"PayTM", ScamBanking, "paytm"}, 15).
			add(BrandInfo{"HDFC", ScamBanking, "hdfc"}, 14).
			add(BrandInfo{"ICICI Bank", ScamBanking, "icici"}, 6).
			add(BrandInfo{"Axis Bank", ScamBanking, "axis"}, 4).
			add(BrandInfo{"Punjab National Bank", ScamBanking, "pnb"}, 3),
		"ESP": newWeighted[BrandInfo]().
			add(BrandInfo{"Santander", ScamBanking, "santander"}, 30).
			add(BrandInfo{"BBVA", ScamBanking, "bbva"}, 28).
			add(BrandInfo{"CaixaBank", ScamBanking, "caixabank"}, 24).
			add(BrandInfo{"Banco Sabadell", ScamBanking, "sabadell"}, 8),
		"NLD": newWeighted[BrandInfo]().
			add(BrandInfo{"Rabobank", ScamBanking, "rabobank"}, 40).
			add(BrandInfo{"ING", ScamBanking, "ing"}, 30).
			add(BrandInfo{"ABN AMRO", ScamBanking, "abnamro"}, 20),
		"GBR": newWeighted[BrandInfo]().
			add(BrandInfo{"HSBC", ScamBanking, "hsbc"}, 25).
			add(BrandInfo{"Barclays", ScamBanking, "barclays"}, 20).
			add(BrandInfo{"Lloyds Bank", ScamBanking, "lloyds"}, 18).
			add(BrandInfo{"Santander", ScamBanking, "santander"}, 15).
			add(BrandInfo{"NatWest", ScamBanking, "natwest"}, 12).
			add(BrandInfo{"Monzo", ScamBanking, "monzo"}, 5),
		"USA": newWeighted[BrandInfo]().
			add(BrandInfo{"Chase", ScamBanking, "chase"}, 25).
			add(BrandInfo{"Bank of America", ScamBanking, "bofa"}, 22).
			add(BrandInfo{"Wells Fargo", ScamBanking, "wellsfargo"}, 20).
			add(BrandInfo{"Citibank", ScamBanking, "citi"}, 10).
			add(BrandInfo{"PayPal", ScamBanking, "paypal"}, 15),
		"FRA": newWeighted[BrandInfo]().
			add(BrandInfo{"Crédit Agricole", ScamBanking, "credit-agricole"}, 35).
			add(BrandInfo{"BNP Paribas", ScamBanking, "bnp"}, 30).
			add(BrandInfo{"Société Générale", ScamBanking, "socgen"}, 20),
		"DEU": newWeighted[BrandInfo]().
			add(BrandInfo{"Sparkasse", ScamBanking, "sparkasse"}, 40).
			add(BrandInfo{"Deutsche Bank", ScamBanking, "deutschebank"}, 25).
			add(BrandInfo{"Commerzbank", ScamBanking, "commerzbank"}, 20),
		"ITA": newWeighted[BrandInfo]().
			add(BrandInfo{"Intesa Sanpaolo", ScamBanking, "intesa"}, 40).
			add(BrandInfo{"UniCredit", ScamBanking, "unicredit"}, 35),
		"BRA": newWeighted[BrandInfo]().
			add(BrandInfo{"Itaú", ScamBanking, "itau"}, 40).
			add(BrandInfo{"Santander", ScamBanking, "santander"}, 30),
		"PRT": newWeighted[BrandInfo]().
			add(BrandInfo{"CaixaBank", ScamBanking, "caixabank"}, 30).
			add(BrandInfo{"Millennium BCP", ScamBanking, "bcp"}, 30).
			add(BrandInfo{"Santander", ScamBanking, "santander"}, 25),
		"AUS": newWeighted[BrandInfo]().
			add(BrandInfo{"Commonwealth Bank", ScamBanking, "commbank"}, 35).
			add(BrandInfo{"ANZ", ScamBanking, "anz"}, 25).
			add(BrandInfo{"Westpac", ScamBanking, "westpac"}, 20),
		"BEL": newWeighted[BrandInfo]().
			add(BrandInfo{"KBC", ScamBanking, "kbc"}, 35).
			add(BrandInfo{"Belfius", ScamBanking, "belfius"}, 30).
			add(BrandInfo{"ING", ScamBanking, "ing"}, 20),
		"IDN": newWeighted[BrandInfo]().
			add(BrandInfo{"Bank BRI", ScamBanking, "bri"}, 40).
			add(BrandInfo{"Bank Mandiri", ScamBanking, "mandiri"}, 30),
		"JPN": newWeighted[BrandInfo]().
			add(BrandInfo{"MUFG", ScamBanking, "mufg"}, 35).
			add(BrandInfo{"SMBC", ScamBanking, "smbc"}, 30),
	},
	ScamDelivery: {
		"USA": newWeighted[BrandInfo]().
			add(BrandInfo{"USPS", ScamDelivery, "usps"}, 55).
			add(BrandInfo{"FedEx", ScamDelivery, "fedex"}, 20).
			add(BrandInfo{"UPS", ScamDelivery, "ups"}, 15).
			add(BrandInfo{"Amazon", ScamOthers, "amazon"}, 10),
		"GBR": newWeighted[BrandInfo]().
			add(BrandInfo{"Royal Mail", ScamDelivery, "royalmail"}, 40).
			add(BrandInfo{"Evri", ScamDelivery, "evri"}, 25).
			add(BrandInfo{"DPD", ScamDelivery, "dpd"}, 15).
			add(BrandInfo{"Hermes", ScamDelivery, "hermes"}, 10),
		"ESP": newWeighted[BrandInfo]().
			add(BrandInfo{"Correos", ScamDelivery, "correos"}, 55).
			add(BrandInfo{"SEUR", ScamDelivery, "seur"}, 20).
			add(BrandInfo{"DHL", ScamDelivery, "dhl"}, 15),
		"DEU": newWeighted[BrandInfo]().
			add(BrandInfo{"DHL", ScamDelivery, "dhl"}, 55).
			add(BrandInfo{"Deutsche Post", ScamDelivery, "deutschepost"}, 25).
			add(BrandInfo{"Hermes", ScamDelivery, "hermes"}, 10),
		"FRA": newWeighted[BrandInfo]().
			add(BrandInfo{"La Poste", ScamDelivery, "laposte"}, 45).
			add(BrandInfo{"Chronopost", ScamDelivery, "chronopost"}, 30).
			add(BrandInfo{"Colissimo", ScamDelivery, "colissimo"}, 15),
		"NLD": newWeighted[BrandInfo]().
			add(BrandInfo{"PostNL", ScamDelivery, "postnl"}, 60).
			add(BrandInfo{"DHL", ScamDelivery, "dhl"}, 25),
		"CZE": newWeighted[BrandInfo]().
			add(BrandInfo{"Česká pošta", ScamDelivery, "ceskaposta"}, 60).
			add(BrandInfo{"DHL", ScamDelivery, "dhl"}, 20),
		"AUS": newWeighted[BrandInfo]().
			add(BrandInfo{"Australia Post", ScamDelivery, "auspost"}, 60).
			add(BrandInfo{"StarTrack", ScamDelivery, "startrack"}, 15),
		"IND": newWeighted[BrandInfo]().
			add(BrandInfo{"India Post", ScamDelivery, "indiapost"}, 50).
			add(BrandInfo{"Delhivery", ScamDelivery, "delhivery"}, 25),
		"ITA": newWeighted[BrandInfo]().
			add(BrandInfo{"Poste Italiane", ScamDelivery, "poste"}, 60).
			add(BrandInfo{"BRT", ScamDelivery, "brt"}, 20),
		"BEL": newWeighted[BrandInfo]().
			add(BrandInfo{"bpost", ScamDelivery, "bpost"}, 60).
			add(BrandInfo{"DHL", ScamDelivery, "dhl"}, 20),
		"JPN": newWeighted[BrandInfo]().
			add(BrandInfo{"Japan Post", ScamDelivery, "japanpost"}, 50).
			add(BrandInfo{"Yamato", ScamDelivery, "yamato"}, 30),
		"IDN": newWeighted[BrandInfo]().
			add(BrandInfo{"JNE", ScamDelivery, "jne"}, 50).
			add(BrandInfo{"Pos Indonesia", ScamDelivery, "posindonesia"}, 30),
	},
	ScamGovernment: {
		"USA": newWeighted[BrandInfo]().
			add(BrandInfo{"Internal Revenue Service", ScamGovernment, "irs"}, 60).
			add(BrandInfo{"Social Security Administration", ScamGovernment, "ssa"}, 20).
			add(BrandInfo{"DMV", ScamGovernment, "dmv"}, 15),
		"GBR": newWeighted[BrandInfo]().
			add(BrandInfo{"HMRC", ScamGovernment, "hmrc"}, 50).
			add(BrandInfo{"DVLA", ScamGovernment, "dvla"}, 25).
			add(BrandInfo{"NHS", ScamGovernment, "nhs"}, 20),
		"FRA": newWeighted[BrandInfo]().
			add(BrandInfo{"impots.gouv.fr", ScamGovernment, "impots"}, 40).
			add(BrandInfo{"Ameli", ScamGovernment, "ameli"}, 35).
			add(BrandInfo{"ANTAI", ScamGovernment, "antai"}, 20),
		"AUS": newWeighted[BrandInfo]().
			add(BrandInfo{"myGov", ScamGovernment, "mygov"}, 50).
			add(BrandInfo{"ATO", ScamGovernment, "ato"}, 35),
		"NLD": newWeighted[BrandInfo]().
			add(BrandInfo{"Belastingdienst", ScamGovernment, "belastingdienst"}, 55).
			add(BrandInfo{"DigiD", ScamGovernment, "digid"}, 30),
		"ESP": newWeighted[BrandInfo]().
			add(BrandInfo{"Agencia Tributaria", ScamGovernment, "aeat"}, 55).
			add(BrandInfo{"Seguridad Social", ScamGovernment, "seg-social"}, 30),
		"IND": newWeighted[BrandInfo]().
			add(BrandInfo{"Income Tax Department", ScamGovernment, "incometax"}, 55).
			add(BrandInfo{"EPFO", ScamGovernment, "epfo"}, 25),
		"DEU": newWeighted[BrandInfo]().
			add(BrandInfo{"Bundesfinanzministerium", ScamGovernment, "bzst"}, 50),
		"ITA": newWeighted[BrandInfo]().
			add(BrandInfo{"Agenzia delle Entrate", ScamGovernment, "agenziaentrate"}, 60),
	},
	ScamTelecom: {
		"GBR": newWeighted[BrandInfo]().
			add(BrandInfo{"O2", ScamTelecom, "o2"}, 30).
			add(BrandInfo{"EE", ScamTelecom, "ee"}, 28).
			add(BrandInfo{"Vodafone", ScamTelecom, "vodafone"}, 25).
			add(BrandInfo{"Three", ScamTelecom, "three"}, 12),
		"FRA": newWeighted[BrandInfo]().
			add(BrandInfo{"SFR", ScamTelecom, "sfr"}, 35).
			add(BrandInfo{"Orange", ScamTelecom, "orange"}, 35).
			add(BrandInfo{"Bouygues", ScamTelecom, "bouygues"}, 20),
		"ESP": newWeighted[BrandInfo]().
			add(BrandInfo{"Movistar", ScamTelecom, "movistar"}, 40).
			add(BrandInfo{"Vodafone", ScamTelecom, "vodafone"}, 30),
		"NLD": newWeighted[BrandInfo]().
			add(BrandInfo{"KPN", ScamTelecom, "kpn"}, 45).
			add(BrandInfo{"Vodafone", ScamTelecom, "vodafone"}, 30),
		"IND": newWeighted[BrandInfo]().
			add(BrandInfo{"Airtel", ScamTelecom, "airtel"}, 35).
			add(BrandInfo{"Jio", ScamTelecom, "jio"}, 35).
			add(BrandInfo{"Vi", ScamTelecom, "vi"}, 20),
		"USA": newWeighted[BrandInfo]().
			add(BrandInfo{"Verizon", ScamTelecom, "verizon"}, 40).
			add(BrandInfo{"AT&T", ScamTelecom, "att"}, 35).
			add(BrandInfo{"T-Mobile", ScamTelecom, "tmobile"}, 20),
		"DEU": newWeighted[BrandInfo]().
			add(BrandInfo{"Telekom", ScamTelecom, "telekom"}, 45).
			add(BrandInfo{"O2", ScamTelecom, "o2"}, 30),
		"AUS": newWeighted[BrandInfo]().
			add(BrandInfo{"Telstra", ScamTelecom, "telstra"}, 50).
			add(BrandInfo{"Optus", ScamTelecom, "optus"}, 30),
		"ITA": newWeighted[BrandInfo]().
			add(BrandInfo{"TIM", ScamTelecom, "tim"}, 50).
			add(BrandInfo{"Vodafone", ScamTelecom, "vodafone"}, 30),
		"BEL": newWeighted[BrandInfo]().
			add(BrandInfo{"Proximus", ScamTelecom, "proximus"}, 55),
	},
	ScamOthers: {
		"USA": newWeighted[BrandInfo]().
			add(BrandInfo{"Amazon", ScamOthers, "amazon"}, 30).
			add(BrandInfo{"Netflix", ScamOthers, "netflix"}, 25).
			add(BrandInfo{"Facebook", ScamOthers, "facebook"}, 12).
			add(BrandInfo{"Coinbase", ScamOthers, "coinbase"}, 10).
			add(BrandInfo{"Apple", ScamOthers, "apple"}, 10).
			add(BrandInfo{"", ScamOthers, ""}, 20), // unbranded job/crypto conversation scams
		"IDN": newWeighted[BrandInfo]().
			add(BrandInfo{"WhatsApp", ScamOthers, "whatsapp"}, 25).
			add(BrandInfo{"Telegram", ScamOthers, "telegram"}, 25).
			add(BrandInfo{"", ScamOthers, ""}, 45),
		"*": newWeighted[BrandInfo]().
			add(BrandInfo{"Amazon", ScamOthers, "amazon"}, 22).
			add(BrandInfo{"Netflix", ScamOthers, "netflix"}, 20).
			add(BrandInfo{"Facebook", ScamOthers, "facebook"}, 10).
			add(BrandInfo{"Telegram", ScamOthers, "telegram"}, 8).
			add(BrandInfo{"WhatsApp", ScamOthers, "whatsapp"}, 8).
			add(BrandInfo{"Apple", ScamOthers, "apple"}, 7).
			add(BrandInfo{"", ScamOthers, ""}, 25),
	},
}

// genericBanking is the fallback pool for countries without a banking entry.
var genericBanking = newWeighted[BrandInfo]().
	add(BrandInfo{"Santander", ScamBanking, "santander"}, 30).
	add(BrandInfo{"HSBC", ScamBanking, "hsbc"}, 25).
	add(BrandInfo{"Citibank", ScamBanking, "citi"}, 20).
	add(BrandInfo{"Standard Chartered", ScamBanking, "sc"}, 15)

var genericDelivery = newWeighted[BrandInfo]().
	add(BrandInfo{"DHL", ScamDelivery, "dhl"}, 50).
	add(BrandInfo{"FedEx", ScamDelivery, "fedex"}, 25).
	add(BrandInfo{"UPS", ScamDelivery, "ups"}, 20)

var genericGovernment = newWeighted[BrandInfo]().
	add(BrandInfo{"Tax Authority", ScamGovernment, "tax"}, 60).
	add(BrandInfo{"Customs Office", ScamGovernment, "customs"}, 30)

var genericTelecom = newWeighted[BrandInfo]().
	add(BrandInfo{"Vodafone", ScamTelecom, "vodafone"}, 40).
	add(BrandInfo{"Orange", ScamTelecom, "orange"}, 30).
	add(BrandInfo{"T-Mobile", ScamTelecom, "tmobile"}, 20)

// pickBrand selects the impersonated brand for a campaign. Conversation
// scams carry no brand.
func pickBrand(rng rngT, scam ScamType, country string) BrandInfo {
	switch scam {
	case ScamWrongNumber, ScamHeyMumDad, ScamSpam:
		return BrandInfo{}
	}
	pools := brandsByScamCountry[scam]
	if pools != nil {
		if w, ok := pools[country]; ok {
			return w.sample(rng)
		}
		if w, ok := pools["*"]; ok {
			return w.sample(rng)
		}
	}
	switch scam {
	case ScamBanking:
		return genericBanking.sample(rng)
	case ScamDelivery:
		return genericDelivery.sample(rng)
	case ScamGovernment:
		return genericGovernment.sample(rng)
	case ScamTelecom:
		return genericTelecom.sample(rng)
	default:
		return BrandInfo{}
	}
}
