package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or an error for an empty sample.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// xs need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of range [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5 quantile.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// FiveNumber holds a classic five-number summary, the data behind each
// weekday box in Fig. 2.
type FiveNumber struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// Summarize computes the five-number summary of xs.
func Summarize(xs []float64) (FiveNumber, error) {
	if len(xs) == 0 {
		return FiveNumber{}, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	q1, _ := Quantile(sorted, 0.25)
	med, _ := Quantile(sorted, 0.5)
	q3, _ := Quantile(sorted, 0.75)
	return FiveNumber{
		Min:    sorted[0],
		Q1:     q1,
		Median: med,
		Q3:     q3,
		Max:    sorted[len(sorted)-1],
		N:      len(sorted),
	}, nil
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	m, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1)), nil
}
