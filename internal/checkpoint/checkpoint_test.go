package checkpoint

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore()
	if _, ok, err := s.Load("twitter"); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	cur := Cursor{Source: "twitter", Updated: time.Now().UTC()}
	cur.SetToken("smishing", "twitter-m42")
	if err := s.Save(cur); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Load("twitter")
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if got.Token("smishing") != "twitter-m42" {
		t.Fatalf("token round-trip: %+v", got)
	}
	// The stored cursor must be isolated from later mutation of either copy.
	got.SetToken("smishing", "mutated")
	again, _, _ := s.Load("twitter")
	if again.Token("smishing") != "twitter-m42" {
		t.Fatal("Load returned an aliased cursor")
	}
	if err := s.Save(Cursor{}); err == nil {
		t.Fatal("Save accepted a cursor with no source")
	}
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"reddit", "smishing.eu", "pastebin"} {
		cur := Cursor{Source: src, Offset: len(src), LastID: src + "-last", Updated: time.Now().UTC()}
		if err := s.Save(cur); err != nil {
			t.Fatal(err)
		}
	}
	// A second store over the same directory models a restarted daemon.
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.Load("smishing.eu")
	if err != nil || !ok {
		t.Fatalf("reopened load: ok=%v err=%v", ok, err)
	}
	if got.Offset != len("smishing.eu") || got.LastID != "smishing.eu-last" {
		t.Fatalf("cursor lost fields across reopen: %+v", got)
	}
	all, err := s2.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("All() = %d cursors, want 3", len(all))
	}
	// No stray temp files may survive a successful commit.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			t.Errorf("leftover non-cursor file %q", e.Name())
		}
	}
}

func TestFileStoreConcurrentSaves(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				_ = s.Save(Cursor{Source: "twitter", Offset: n*100 + j})
				_, _, _ = s.Load("twitter")
			}
		}(i)
	}
	wg.Wait()
	got, ok, err := s.Load("twitter")
	if err != nil || !ok {
		t.Fatalf("post-race load: ok=%v err=%v", ok, err)
	}
	if got.Source != "twitter" {
		t.Fatalf("torn cursor: %+v", got)
	}
}

func TestCursorZeroAndClone(t *testing.T) {
	var c Cursor
	if !c.IsZero() {
		t.Fatal("zero cursor not IsZero")
	}
	c.SetToken("k", "v")
	if c.IsZero() {
		t.Fatal("cursor with token reports IsZero")
	}
	cl := c.Clone()
	cl.SetToken("k", "other")
	if c.Token("k") != "v" {
		t.Fatal("Clone shares token map")
	}
}

// TestFileStoreSaveDurabilityContract documents the crash-durability
// contract of Save: by the time it returns nil, the cursor bytes are
// fsynced in the temp file AND the directory entry produced by the rename
// is fsynced — so a crash (or power loss) immediately after a successful
// Save can only ever expose this commit or the previous one, never a
// missing or zero-length cursor file. A unit test cannot pull the power,
// so it pins the observable half of the contract: the committed file is
// complete, no temp debris survives a Save, and every earlier commit is
// fully replaced.
func TestFileStoreSaveDurabilityContract(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		cur := Cursor{Source: "twitter", Offset: i, Updated: time.Now().UTC()}
		if err := s.Save(cur); err != nil {
			t.Fatalf("Save #%d: %v", i, err)
		}
		// The committed file is always the full, current commit.
		got, ok, err := s.Load("twitter")
		if err != nil || !ok || got.Offset != i {
			t.Fatalf("after Save #%d: ok=%v err=%v cursor=%+v", i, ok, err, got)
		}
		// No temp files outlive a successful Save: everything in the
		// directory is a committed cursor.
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if filepath.Ext(e.Name()) != ".json" {
				t.Fatalf("Save #%d left non-commit debris %q", i, e.Name())
			}
			info, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			if info.Size() == 0 {
				t.Fatalf("Save #%d left zero-length commit %q", i, e.Name())
			}
		}
	}
}
