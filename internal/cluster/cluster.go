// Package cluster groups curated records into campaigns: reports that share
// a message template, a landing domain, or a sender ID belong to the same
// operation. The paper reasons about campaigns repeatedly (the 2021 SBI
// burst in §5.1, per-campaign shortener/registrar choices in §4) without
// publishing an algorithm; this package provides the attribution layer a
// deployment needs, built on union-find over shared-infrastructure edges.
package cluster

import (
	"sort"
	"strings"
	"time"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/senderid"
	"github.com/smishkit/smishkit/internal/textnorm"
)

// Campaign is one attributed cluster of reports.
type Campaign struct {
	ID        int
	Records   []int // indices into the input record slice
	Templates map[string]bool
	Domains   map[string]bool
	Senders   map[string]bool
	Brand     string // plurality brand
	ScamType  string // plurality scam type
	First     time.Time
	Last      time.Time
}

// Size returns the report count.
func (c *Campaign) Size() int { return len(c.Records) }

// Span returns the campaign's active window.
func (c *Campaign) Span() time.Duration { return c.Last.Sub(c.First) }

// TemplateKey canonicalizes a message body so texts minted from one
// template share a key: folded, digits collapsed, URL paths stripped.
func TemplateKey(text string) string {
	var b strings.Builder
	inURL := false
	for _, r := range textnorm.Fold(text) {
		switch {
		case r == ' ':
			inURL = false
			b.WriteRune(' ')
		case inURL:
			// skip URL path characters entirely
		case r == '/':
			inURL = true
			b.WriteRune('~')
		case r >= '0' && r <= '9':
			b.WriteRune('#')
		default:
			b.WriteRune(r)
		}
	}
	return collapseHashes(b.String())
}

// collapseHashes squeezes runs of # so amounts of different lengths match.
func collapseHashes(s string) string {
	var b strings.Builder
	prevHash := false
	for _, r := range s {
		if r == '#' {
			if prevHash {
				continue
			}
			prevHash = true
		} else {
			prevHash = false
		}
		b.WriteRune(r)
	}
	return b.String()
}

// unionFind with path compression and union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

// Options tunes which infrastructure signals link records.
type Options struct {
	// ByTemplate links records sharing a message template. Aggressive:
	// phishing kits reuse stock texts across operations, so template
	// linking merges distinct infrastructure into kit-level clusters.
	ByTemplate bool
	ByDomain   bool // shared landing domain
	BySender   bool // shared sender ID
}

// DefaultOptions links on infrastructure only (domain + sender), which
// recovers operation-level campaigns; enable ByTemplate for kit-level
// attribution.
func DefaultOptions() Options {
	return Options{ByDomain: true, BySender: true}
}

// Cluster groups records into campaigns.
func Cluster(records []core.Record, opts Options) []*Campaign {
	uf := newUnionFind(len(records))
	link := func(key string, idx int, last map[string]int) {
		if key == "" {
			return
		}
		if prev, ok := last[key]; ok {
			uf.union(prev, idx)
		}
		last[key] = idx
	}
	byTemplate := map[string]int{}
	byDomain := map[string]int{}
	bySender := map[string]int{}
	for i, r := range records {
		if opts.ByTemplate {
			link(TemplateKey(r.Text), i, byTemplate)
		}
		if opts.ByDomain {
			link(r.Domain, i, byDomain)
		}
		if opts.BySender && r.SenderKind != senderid.KindRedacted {
			// Redacted IDs all render as the same placeholder; linking on
			// them would chain unrelated reports.
			link(r.SenderRaw, i, bySender)
		}
	}

	groups := map[int]*Campaign{}
	for i, r := range records {
		root := uf.find(i)
		c, ok := groups[root]
		if !ok {
			c = &Campaign{
				Templates: map[string]bool{},
				Domains:   map[string]bool{},
				Senders:   map[string]bool{},
			}
			groups[root] = c
		}
		c.Records = append(c.Records, i)
		c.Templates[TemplateKey(r.Text)] = true
		if r.Domain != "" {
			c.Domains[r.Domain] = true
		}
		if r.SenderRaw != "" {
			c.Senders[r.SenderRaw] = true
		}
		at := r.Timestamp.Time
		if at.IsZero() {
			at = r.PostedAt
		}
		if c.First.IsZero() || at.Before(c.First) {
			c.First = at
		}
		if at.After(c.Last) {
			c.Last = at
		}
	}

	out := make([]*Campaign, 0, len(groups))
	for _, c := range groups {
		c.Brand, c.ScamType = plurality(records, c.Records)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Records) != len(out[j].Records) {
			return len(out[i].Records) > len(out[j].Records)
		}
		return out[i].Records[0] < out[j].Records[0]
	})
	for i, c := range out {
		c.ID = i + 1
	}
	return out
}

func plurality(records []core.Record, idxs []int) (brand, scam string) {
	brands := map[string]int{}
	scams := map[string]int{}
	for _, i := range idxs {
		if b := records[i].Annotation.Brand; b != "" {
			brands[b]++
		}
		scams[string(records[i].Annotation.ScamType)]++
	}
	return maxKey(brands), maxKey(scams)
}

func maxKey(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best, bestN := "", 0
	for _, k := range keys {
		if m[k] > bestN {
			best, bestN = k, m[k]
		}
	}
	return best
}
