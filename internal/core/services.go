package core

import (
	"context"
	"errors"

	"github.com/smishkit/smishkit/internal/avscan"
	"github.com/smishkit/smishkit/internal/ctlog"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/shortener"
	"github.com/smishkit/smishkit/internal/whois"
)

// The enrichment-client seam: one narrow interface per intelligence
// service, shaped exactly like the concrete client in its package. The
// pipeline only ever calls these methods, so anything — the real client,
// an enrichcache decorator, a fake in tests — plugs in without touching
// pipeline code.

// ErrShortCircuited marks a service call that a local guard (such as an
// open circuit breaker) rejected without reaching the service. Decorators
// wrap it so the pipeline can tell a shed call from a fresh failure: the
// record's field is still degraded, but the failure it echoes was already
// counted when the guard tripped, so it stays out of the run-level
// failure-rate accounting — otherwise an open breaker doing its job would
// push the run over Options.AbortFailureRate and abort the very sweep it
// was protecting.
var ErrShortCircuited = errors.New("core: service call short-circuited")

// HLRLookuper resolves an MSISDN to its HLR record (§3.3.1).
type HLRLookuper interface {
	Lookup(ctx context.Context, msisdn string) (hlr.Result, error)
}

// WhoisLookuper fetches a domain's registration record; found is false
// for unregistered domains (§3.3.3).
type WhoisLookuper interface {
	Lookup(ctx context.Context, domain string) (whois.Record, bool, error)
}

// CTSummarizer aggregates a domain's certificate-transparency issuance
// history (§3.3.4).
type CTSummarizer interface {
	Summary(ctx context.Context, domain string) (ctlog.Summary, error)
}

// DNSResolver serves passive-DNS history and IP-to-AS mapping; ASOf
// returns dnsdb.ErrNoRoute for unannounced space (§3.3.4).
type DNSResolver interface {
	Resolutions(ctx context.Context, domain string) ([]dnsdb.Observation, error)
	ASOf(ctx context.Context, ip string) (dnsdb.ASInfo, error)
}

// AVScanner runs the three URL-reputation paths: the multi-vendor
// aggregate, the Safe Browsing API, and the transparency-report site
// (blocked reports the site refusing the automated query, §3.3.5).
type AVScanner interface {
	Scan(ctx context.Context, u string) (avscan.Report, error)
	GSBLookup(ctx context.Context, u string) (avscan.GSBResult, error)
	Transparency(ctx context.Context, u string) (avscan.TransparencyResult, bool, error)
}

// ShortExpander resolves a short link to its target, returning
// shortener.ErrNotFound / shortener.ErrTakenDown for lost chains (§3.3.5).
type ShortExpander interface {
	Expand(ctx context.Context, service, code string) (string, error)
}

// The optional bulk seam: a service that can answer many keys in one
// round trip additionally implements its Bulk* interface. Every batch
// method returns parallel result and error slices, one slot per input key
// — per-key error demultiplexing is the contract, so one bad key degrades
// one record, never the batch. Decorators that cannot batch simply don't
// implement these, and callers (the batchmux tier) detect that by type
// assertion and fall through to the per-key methods.

// BulkHLRLookuper resolves many MSISDNs in one call.
type BulkHLRLookuper interface {
	LookupBatch(ctx context.Context, msisdns []string) ([]hlr.Result, []error)
}

// BulkDNSResolver serves many domains' passive-DNS histories in one call.
type BulkDNSResolver interface {
	ResolutionsBatch(ctx context.Context, domains []string) ([][]dnsdb.Observation, []error)
}

// BulkAVScanner runs the scriptable URL-reputation paths (the vendor
// aggregate and the Safe Browsing status) over many URLs in one call.
// Transparency is deliberately absent: the transparency site blocks
// automation, so there is nothing to batch.
type BulkAVScanner interface {
	ScanBatch(ctx context.Context, urls []string) ([]avscan.Report, []error)
	GSBLookupBatch(ctx context.Context, urls []string) ([]avscan.GSBResult, []error)
}

// The concrete clients are the canonical implementations.
var (
	_ HLRLookuper   = (*hlr.Client)(nil)
	_ WhoisLookuper = (*whois.Client)(nil)
	_ CTSummarizer  = (*ctlog.Client)(nil)
	_ DNSResolver   = (*dnsdb.Client)(nil)
	_ AVScanner     = (*avscan.Client)(nil)
	_ ShortExpander = (*shortener.Client)(nil)

	_ BulkHLRLookuper = (*hlr.Client)(nil)
	_ BulkDNSResolver = (*dnsdb.Client)(nil)
	_ BulkAVScanner   = (*avscan.Client)(nil)
)

// Services bundles the enrichment clients behind the per-service
// interfaces. Any nil service skips its enrichment stage, mirroring how
// the paper's analyses draw on different data sources (Table 2).
// Decorators (caching, instrumentation) wrap individual fields.
type Services struct {
	HLR       HLRLookuper
	Whois     WhoisLookuper
	CTLog     CTSummarizer
	DNSDB     DNSResolver
	AVScan    AVScanner
	Shortener ShortExpander
}
