package detect

import (
	"math"
	"testing"

	"github.com/smishkit/smishkit/internal/corpus"
)

// corpusDocs builds a labeled dataset: smishing messages labeled with
// their scam type plus a ham class, the training regime §7.2 proposes.
func corpusDocs(t testing.TB, n int, seed int64) []Doc {
	t.Helper()
	w := corpus.Generate(corpus.Config{Seed: seed, Messages: n})
	docs := make([]Doc, 0, n+n/4)
	for _, m := range w.Messages {
		docs = append(docs, Doc{Text: m.Text, Label: string(m.ScamType)})
	}
	for _, ham := range corpus.GenerateHam(seed+1, n/4) {
		docs = append(docs, Doc{Text: ham, Label: "ham"})
	}
	return docs
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, false); err != ErrNoTraining {
		t.Errorf("empty train err = %v", err)
	}
	if _, err := Train([]Doc{{Text: "x", Label: ""}}, false); err == nil {
		t.Error("empty label accepted")
	}
}

func TestPredictUntrained(t *testing.T) {
	var m *Model
	if _, _, err := m.Predict("x"); err != ErrNoTraining {
		t.Errorf("err = %v", err)
	}
}

func TestBinarySmishingDetection(t *testing.T) {
	// Binary task: smishing (any scam type) vs ham.
	raw := corpusDocs(t, 3000, 21)
	docs := make([]Doc, len(raw))
	for i, d := range raw {
		label := "smish"
		if d.Label == "ham" {
			label = "ham"
		}
		docs[i] = Doc{Text: d.Text, Label: label}
	}
	train, test := Split(docs, 0.25, 5)
	m, err := Train(train, true)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(m, test)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("binary: acc=%.3f macroF1=%.3f n=%d", ev.Accuracy, ev.MacroF1, ev.N)
	if ev.Accuracy < 0.95 {
		t.Errorf("binary accuracy = %.3f, want >= 0.95", ev.Accuracy)
	}
	if ev.PerLabel["ham"].Recall < 0.9 {
		t.Errorf("ham recall = %.3f (false-positive rate too high)", ev.PerLabel["ham"].Recall)
	}
}

func TestMulticlassScamTypes(t *testing.T) {
	docs := corpusDocs(t, 4000, 22)
	train, test := Split(docs, 0.25, 6)
	m, err := Train(train, true)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(m, test)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("multiclass: acc=%.3f macroF1=%.3f n=%d labels=%d", ev.Accuracy, ev.MacroF1, ev.N, len(ev.PerLabel))
	if ev.Accuracy < 0.80 {
		t.Errorf("multiclass accuracy = %.3f, want >= 0.80", ev.Accuracy)
	}
	if bank, ok := ev.PerLabel[string(corpus.ScamBanking)]; ok && bank.F1 < 0.8 {
		t.Errorf("banking F1 = %.3f", bank.F1)
	}
}

func TestBigramsHelpOnConversationScams(t *testing.T) {
	docs := corpusDocs(t, 4000, 23)
	train, test := Split(docs, 0.25, 7)
	uni, err := Train(train, false)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := Train(train, true)
	if err != nil {
		t.Fatal(err)
	}
	evU, _ := Evaluate(uni, test)
	evB, _ := Evaluate(bi, test)
	t.Logf("unigram acc=%.3f, bigram acc=%.3f", evU.Accuracy, evB.Accuracy)
	if evB.Accuracy < evU.Accuracy-0.02 {
		t.Errorf("bigrams hurt accuracy: %.3f vs %.3f", evB.Accuracy, evU.Accuracy)
	}
}

func TestPredictProbabilitiesNormalized(t *testing.T) {
	docs := corpusDocs(t, 800, 24)
	m, err := Train(docs, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range []string{
		"Your parcel is waiting, pay the fee",
		"see you at 7",
		"", // empty text must not panic
	} {
		_, scores, err := m.Predict(text)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, s := range scores {
			if s.Prob < 0 || s.Prob > 1 || math.IsNaN(s.Prob) {
				t.Fatalf("bad probability %v for %q", s.Prob, text)
			}
			sum += s.Prob
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("probabilities sum to %v for %q", sum, text)
		}
		// Sorted most-probable first.
		for i := 1; i < len(scores); i++ {
			if scores[i].LogProb > scores[i-1].LogProb {
				t.Fatal("scores not sorted")
			}
		}
	}
}

func TestModelRoundTrip(t *testing.T) {
	docs := corpusDocs(t, 600, 25)
	m, err := Train(docs, true)
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range []string{"verify your account now", "lunch at noon?"} {
		a, _, _ := m.Predict(text)
		b, _, _ := m2.Predict(text)
		if a != b {
			t.Errorf("round-trip prediction differs for %q: %q vs %q", text, a, b)
		}
	}
	if _, err := Load([]byte("{}")); err == nil {
		t.Error("empty model loaded")
	}
	if _, err := Load([]byte("junk")); err == nil {
		t.Error("junk loaded")
	}
}

func TestSplitDeterministic(t *testing.T) {
	docs := corpusDocs(t, 400, 26)
	a1, b1 := Split(docs, 0.3, 9)
	a2, b2 := Split(docs, 0.3, 9)
	if len(a1) != len(a2) || len(b1) != len(b2) || a1[0].Text != a2[0].Text {
		t.Error("split not deterministic")
	}
	if len(a1)+len(b1) != len(docs) {
		t.Error("split lost documents")
	}
}

func TestFeaturesURLMarker(t *testing.T) {
	feats := Features("pay at https://evil.top/x now", false)
	hasURL := false
	for _, f := range feats {
		if f == "__url__" {
			hasURL = true
		}
	}
	if !hasURL {
		t.Errorf("no url marker in %v", feats)
	}
}

// Campaign-level splitting prevents template leakage between train and
// test; accuracy must stay strong but is allowed to drop vs the random
// split (which shares templates across the boundary).
func TestCampaignLevelSplit(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: 27, Messages: 4000})
	var docs []Doc
	var groups []string
	for _, m := range w.Messages {
		docs = append(docs, Doc{Text: m.Text, Label: string(m.ScamType)})
		groups = append(groups, m.Campaign)
	}
	for i, ham := range corpus.GenerateHam(28, 1000) {
		docs = append(docs, Doc{Text: ham, Label: "ham"})
		groups = append(groups, "ham-group-"+string(rune('a'+i%20)))
	}
	train, test := SplitByGroup(docs, groups, 0.25, 11)
	if len(train) == 0 || len(test) == 0 {
		t.Fatalf("degenerate split: %d/%d", len(train), len(test))
	}
	m, err := Train(train, true)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(m, test)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("campaign split: acc=%.3f macroF1=%.3f n=%d", ev.Accuracy, ev.MacroF1, ev.N)
	if ev.Accuracy < 0.75 {
		t.Errorf("campaign-split accuracy = %.3f, want >= 0.75", ev.Accuracy)
	}
}
