// Package whois simulates the registrar-data service the paper accessed via
// WhoisXMLAPI (§3.3.3). It serves domain registration records two ways: a
// classic RFC 3912 text protocol over TCP (one query line, text response,
// connection close) and a JSON HTTP API with an API key — the form the
// enrichment pipeline automates, since real WHOIS restricts programmatic
// querying.
package whois

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/netutil"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// Record is one domain's registration data.
type Record struct {
	Domain     string    `json:"domain"`
	Registrar  string    `json:"registrar"`
	Registered time.Time `json:"registered"`
	Expires    time.Time `json:"expires"`
	NameServer string    `json:"name_server"`
	Status     string    `json:"status"` // clientTransferProhibited etc.
}

// Store is an in-memory WHOIS database. Safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	records map[string]Record
}

// NewStore returns an empty database.
func NewStore() *Store { return &Store{records: make(map[string]Record)} }

// Add upserts a record keyed by lowercase domain.
func (s *Store) Add(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records[strings.ToLower(r.Domain)] = r
}

// Lookup returns the record for domain.
func (s *Store) Lookup(domain string) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.records[strings.ToLower(strings.TrimSpace(domain))]
	return r, ok
}

// Len returns the database size.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// --- RFC 3912 text protocol ---

// TCPServer answers WHOIS queries on a TCP listener.
type TCPServer struct {
	store *Store
	ln    net.Listener
	wg    sync.WaitGroup
}

// ServeTCP starts answering on ln until the listener closes.
func ServeTCP(store *Store, ln net.Listener) *TCPServer {
	s := &TCPServer{store: store, ln: ln}
	s.wg.Add(1)
	go s.loop()
	return s
}

// Close stops the listener and waits for in-flight connections.
func (s *TCPServer) Close() error {
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) loop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *TCPServer) handle(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil && line == "" {
		return
	}
	domain := strings.TrimSpace(line)
	rec, ok := s.store.Lookup(domain)
	if !ok {
		fmt.Fprintf(conn, "No match for %q.\r\n", domain)
		return
	}
	fmt.Fprintf(conn, "Domain Name: %s\r\n", strings.ToUpper(rec.Domain))
	fmt.Fprintf(conn, "Registrar: %s\r\n", rec.Registrar)
	fmt.Fprintf(conn, "Creation Date: %s\r\n", rec.Registered.UTC().Format(time.RFC3339))
	fmt.Fprintf(conn, "Registry Expiry Date: %s\r\n", rec.Expires.UTC().Format(time.RFC3339))
	fmt.Fprintf(conn, "Name Server: %s\r\n", rec.NameServer)
	fmt.Fprintf(conn, "Domain Status: %s\r\n", rec.Status)
}

// QueryTCP performs one RFC 3912 query against addr and parses the response.
func QueryTCP(ctx context.Context, addr, domain string) (Record, bool, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return Record{}, false, fmt.Errorf("whois: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	} else {
		_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	}
	if _, err := fmt.Fprintf(conn, "%s\r\n", domain); err != nil {
		return Record{}, false, fmt.Errorf("whois: send query: %w", err)
	}
	rec := Record{}
	found := false
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "No match for") {
			return Record{}, false, nil
		}
		key, value, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		value = strings.TrimSpace(value)
		switch key {
		case "Domain Name":
			rec.Domain = strings.ToLower(value)
			found = true
		case "Registrar":
			rec.Registrar = value
		case "Creation Date":
			rec.Registered, _ = time.Parse(time.RFC3339, value)
		case "Registry Expiry Date":
			rec.Expires, _ = time.Parse(time.RFC3339, value)
		case "Name Server":
			rec.NameServer = value
		case "Domain Status":
			rec.Status = value
		}
	}
	if err := sc.Err(); err != nil {
		return Record{}, false, fmt.Errorf("whois: read response: %w", err)
	}
	return rec, found, nil
}

// --- JSON HTTP API (WhoisXMLAPI-style) ---

// Server exposes GET /v1/whois?domain=... with API-key auth + rate limit.
type Server struct {
	store   *Store
	apiKey  string
	limiter *netutil.TokenBucket
}

// NewServer wires the store into the HTTP API.
func NewServer(store *Store, apiKey string, ratePerSec float64) *Server {
	s := &Server{store: store, apiKey: apiKey}
	if ratePerSec > 0 {
		s.limiter = netutil.NewTokenBucket(int(ratePerSec*2)+1, ratePerSec)
	}
	return s
}

// Response is the JSON lookup result.
type Response struct {
	Found  bool   `json:"found"`
	Record Record `json:"record"`
}

// Handler returns the routed handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/whois", func(w http.ResponseWriter, r *http.Request) {
		if s.limiter != nil && !s.limiter.Allow() {
			netutil.WriteRateLimited(w, s.limiter.RetryAfter(1))
			return
		}
		domain := r.URL.Query().Get("domain")
		if domain == "" {
			netutil.WriteError(w, http.StatusBadRequest, "missing domain parameter")
			return
		}
		rec, ok := s.store.Lookup(domain)
		netutil.WriteJSON(w, http.StatusOK, Response{Found: ok, Record: rec})
	})
	return netutil.RequireKey(s.apiKey, mux)
}

// Client consumes the JSON API.
type Client struct {
	API netutil.Client
}

// NewClient builds a client for the service at baseURL.
func NewClient(baseURL, apiKey string) *Client {
	return &Client{API: netutil.Client{BaseURL: baseURL, APIKey: apiKey}}
}

// Instrument records this client's calls, errors, retries, 429s, and
// latency into reg under the "whois" service name. Returns c for chaining.
func (c *Client) Instrument(reg *telemetry.Registry) *Client {
	c.API.Metrics = telemetry.NewClientMetrics(reg, "whois")
	return c
}

// Lookup fetches a domain's registration record.
func (c *Client) Lookup(ctx context.Context, domain string) (Record, bool, error) {
	var resp Response
	if err := c.API.GetJSON(ctx, "/v1/whois?domain="+url.QueryEscape(domain), &resp); err != nil {
		return Record{}, false, err
	}
	return resp.Record, resp.Found, nil
}
