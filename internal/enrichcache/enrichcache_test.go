package enrichcache

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/hlr"
	"github.com/smishkit/smishkit/internal/netutil"
	"github.com/smishkit/smishkit/internal/shortener"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// fakeClock is a mutable time source for TTL tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func testCache(t *testing.T, sc ServiceConfig, serveStale bool, now func() time.Time) (*lookupCache[int], *telemetry.Registry) {
	t.Helper()
	if sc.TTL == 0 {
		sc.TTL = time.Minute
	}
	if sc.NegativeTTL == 0 {
		sc.NegativeTTL = 10 * time.Second
	}
	if sc.MaxEntries == 0 {
		sc.MaxEntries = 128
	}
	if now == nil {
		now = time.Now
	}
	reg := telemetry.NewRegistry()
	return newLookupCache[int](sc, serveStale, now, newMetrics(reg, "test")), reg
}

// TestSingleflightCoalesces floods one key with concurrent workers while
// the upstream call is held open: exactly one upstream call happens, and
// every waiter gets its result. Run under -race in CI.
func TestSingleflightCoalesces(t *testing.T) {
	c, reg := testCache(t, ServiceConfig{}, false, nil)
	var calls atomic.Int32
	release := make(chan struct{})
	fn := func(ctx context.Context) (int, error) {
		calls.Add(1)
		<-release
		return 42, nil
	}

	const workers = 32
	var wg sync.WaitGroup
	results := make([]int, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.get(context.Background(), "k", fn)
		}(i)
	}

	// Wait until every follower is parked on the in-flight call, then
	// release the leader.
	coalesced := reg.Counter("cache.test.coalesced")
	deadline := time.After(10 * time.Second)
	for coalesced.Value() < workers-1 {
		select {
		case <-deadline:
			t.Fatalf("coalesced = %d, want %d", coalesced.Value(), workers-1)
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Errorf("upstream calls = %d, want 1", n)
	}
	for i := range results {
		if errs[i] != nil || results[i] != 42 {
			t.Fatalf("worker %d got (%d, %v)", i, results[i], errs[i])
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["cache.test.misses"] != 1 {
		t.Errorf("misses = %d, want 1", snap.Counters["cache.test.misses"])
	}
}

// TestCoalescedWaiterHonorsContext: a follower whose context dies while
// waiting gets the context error, not a hang.
func TestCoalescedWaiterHonorsContext(t *testing.T) {
	c, _ := testCache(t, ServiceConfig{}, false, nil)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _ = c.get(context.Background(), "k", func(ctx context.Context) (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.get(ctx, "k", func(ctx context.Context) (int, error) { return 2, nil })
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter hung")
	}
	close(release)
}

func TestTTLExpiry(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1700000000, 0)}
	c, reg := testCache(t, ServiceConfig{TTL: time.Minute}, false, clk.Now)
	var calls int
	fn := func(ctx context.Context) (int, error) { calls++; return calls, nil }

	for i := 0; i < 3; i++ {
		if v, _ := c.get(context.Background(), "k", fn); v != 1 {
			t.Fatalf("fresh get = %d, want 1", v)
		}
	}
	clk.Advance(time.Minute + time.Second)
	if v, _ := c.get(context.Background(), "k", fn); v != 2 {
		t.Errorf("post-expiry get = %d, want 2 (new upstream call)", v)
	}
	snap := reg.Snapshot()
	if snap.Counters["cache.test.hits"] != 2 || snap.Counters["cache.test.misses"] != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/2",
			snap.Counters["cache.test.hits"], snap.Counters["cache.test.misses"])
	}
}

// TestLRUEvictionOrder: with room for two entries, touching the older one
// makes the other the eviction victim.
func TestLRUEvictionOrder(t *testing.T) {
	c, reg := testCache(t, ServiceConfig{MaxEntries: 2}, false, nil)
	calls := map[string]int{}
	fnFor := func(key string) func(context.Context) (int, error) {
		return func(ctx context.Context) (int, error) {
			calls[key]++
			return calls[key], nil
		}
	}

	mustGet := func(key string, want int) {
		t.Helper()
		if v, err := c.get(context.Background(), key, fnFor(key)); err != nil || v != want {
			t.Fatalf("get(%s) = (%d, %v), want %d", key, v, err, want)
		}
	}

	mustGet("a", 1)
	mustGet("b", 1)
	mustGet("a", 1) // refresh a: b becomes least recently used
	mustGet("c", 1) // evicts b
	if got := reg.Counter("cache.test.evictions").Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	mustGet("a", 1) // still cached
	mustGet("b", 2) // evicted: re-resolved
	if c.len() > 2 {
		t.Errorf("len = %d, want <= 2", c.len())
	}
}

func TestNegativeErrorCaching(t *testing.T) {
	notFound := errors.New("not found")
	c, reg := testCache(t, ServiceConfig{}, false, nil)
	c.isNegErr = func(err error) bool { return errors.Is(err, notFound) }
	var calls int
	fn := func(ctx context.Context) (int, error) { calls++; return 0, notFound }

	for i := 0; i < 3; i++ {
		if _, err := c.get(context.Background(), "gone", fn); !errors.Is(err, notFound) {
			t.Fatalf("err = %v, want notFound", err)
		}
	}
	if calls != 1 {
		t.Errorf("upstream calls = %d, want 1 (negative cached)", calls)
	}
	if got := reg.Counter("cache.test.negative_hits").Value(); got != 2 {
		t.Errorf("negative hits = %d, want 2", got)
	}
}

func TestUncachedErrorsPassThrough(t *testing.T) {
	boom := errors.New("transport down")
	c, _ := testCache(t, ServiceConfig{}, false, nil)
	var calls int
	fn := func(ctx context.Context) (int, error) { calls++; return 0, boom }
	for i := 0; i < 2; i++ {
		if _, err := c.get(context.Background(), "k", fn); !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 2 {
		t.Errorf("upstream calls = %d, want 2 (hard errors are not cached)", calls)
	}
}

func TestServeStaleOn5xx(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1700000000, 0)}
	c, reg := testCache(t, ServiceConfig{TTL: time.Minute}, true, clk.Now)
	healthy := true
	var calls int
	fn := func(ctx context.Context) (int, error) {
		calls++
		if healthy {
			return 7, nil
		}
		return 0, fmt.Errorf("wrapped: %w", &netutil.APIError{Status: http.StatusBadGateway, Body: "upstream sad"})
	}

	if v, err := c.get(context.Background(), "k", fn); err != nil || v != 7 {
		t.Fatalf("initial get = (%d, %v)", v, err)
	}
	healthy = false
	clk.Advance(2 * time.Minute)
	v, err := c.get(context.Background(), "k", fn)
	if err != nil || v != 7 {
		t.Fatalf("degraded get = (%d, %v), want stale 7", v, err)
	}
	if calls != 2 {
		t.Errorf("upstream calls = %d, want 2 (stale serve still probes upstream)", calls)
	}
	if got := reg.Counter("cache.test.stale_served").Value(); got != 1 {
		t.Errorf("stale_served = %d, want 1", got)
	}

	// Without a stale entry for the key, the 5xx surfaces.
	if _, err := c.get(context.Background(), "fresh-key", fn); err == nil {
		t.Error("5xx with no stale entry returned nil error")
	}
}

func TestServeStaleDisabledPropagates5xx(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1700000000, 0)}
	c, _ := testCache(t, ServiceConfig{TTL: time.Minute}, false, clk.Now)
	healthy := true
	fn := func(ctx context.Context) (int, error) {
		if healthy {
			return 7, nil
		}
		return 0, &netutil.APIError{Status: http.StatusInternalServerError, Body: "boom"}
	}
	if _, err := c.get(context.Background(), "k", fn); err != nil {
		t.Fatal(err)
	}
	healthy = false
	clk.Advance(2 * time.Minute)
	if _, err := c.get(context.Background(), "k", fn); !netutil.IsStatus(err, http.StatusInternalServerError) {
		t.Errorf("err = %v, want 500 APIError (ServeStale off)", err)
	}
}

// --- decorator-level tests against the core.Services seam ---

type countingHLR struct{ calls atomic.Int32 }

func (f *countingHLR) Lookup(ctx context.Context, msisdn string) (hlr.Result, error) {
	f.calls.Add(1)
	return hlr.Result{Record: hlr.Record{MSISDN: msisdn}, Known: true}, nil
}

type countingExpander struct{ calls atomic.Int32 }

func (f *countingExpander) Expand(ctx context.Context, service, code string) (string, error) {
	f.calls.Add(1)
	if code == "dead" {
		return "", shortener.ErrTakenDown
	}
	return "https://target.example/" + code, nil
}

func TestDecoratorsShareServiceCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	cache := New(Config{}, reg)
	upstream := &countingHLR{}
	svcs := cache.WrapServices(core.Services{HLR: upstream})
	if svcs.Whois != nil || svcs.Shortener != nil {
		t.Fatal("nil services must stay nil after wrapping")
	}

	ctx := context.Background()
	for i := 0; i < 5; i++ {
		// Key normalization folds the formatting variants together.
		msisdn := "+44 7700 900123"
		if i%2 == 0 {
			msisdn = "+44 7700 900123 "
		}
		res, err := svcs.HLR.Lookup(ctx, msisdn)
		if err != nil || !res.Known {
			t.Fatal(err)
		}
	}
	if n := upstream.calls.Load(); n != 1 {
		t.Errorf("upstream HLR calls = %d, want 1", n)
	}
	snap := reg.Snapshot()
	if snap.Counters["cache.hlr.hits"] != 4 || snap.Counters["cache.hlr.misses"] != 1 {
		t.Errorf("cache.hlr hits/misses = %d/%d, want 4/1",
			snap.Counters["cache.hlr.hits"], snap.Counters["cache.hlr.misses"])
	}
	st := cache.Stats()["hlr"]
	if st.Hits != 4 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestShortenerNegativeDecorator(t *testing.T) {
	cache := New(Config{}, telemetry.NewRegistry())
	upstream := &countingExpander{}
	exp := cache.Shortener(upstream)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := exp.Expand(ctx, "bit.ly", "dead"); !errors.Is(err, shortener.ErrTakenDown) {
			t.Fatalf("err = %v", err)
		}
	}
	if n := upstream.calls.Load(); n != 1 {
		t.Errorf("upstream calls = %d, want 1 (takedown cached)", n)
	}
	if got, err := exp.Expand(ctx, "bit.ly", "live"); err != nil || got != "https://target.example/live" {
		t.Fatalf("live expand = (%q, %v)", got, err)
	}
	st := cache.Stats()["shortener"]
	if st.NegativeHit != 2 {
		t.Errorf("negative hits = %d, want 2", st.NegativeHit)
	}
}

func TestDNSNegativeNoRoute(t *testing.T) {
	cache := New(Config{}, telemetry.NewRegistry())
	var calls atomic.Int32
	res := cache.DNSDB(fakeDNS{calls: &calls})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := res.ASOf(ctx, "203.0.113.9"); !errors.Is(err, dnsdb.ErrNoRoute) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("upstream ASOf calls = %d, want 1", calls.Load())
	}
}

type fakeDNS struct{ calls *atomic.Int32 }

func (f fakeDNS) Resolutions(ctx context.Context, domain string) ([]dnsdb.Observation, error) {
	return nil, nil
}

func (f fakeDNS) ASOf(ctx context.Context, ip string) (dnsdb.ASInfo, error) {
	f.calls.Add(1)
	return dnsdb.ASInfo{}, dnsdb.ErrNoRoute
}

func TestPerServiceConfigOverride(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1700000000, 0)}
	cache := New(Config{
		TTL:        time.Hour,
		Clock:      clk.Now,
		PerService: map[string]ServiceConfig{"hlr": {TTL: time.Second}},
	}, telemetry.NewRegistry())
	upstream := &countingHLR{}
	lk := cache.HLR(upstream)
	ctx := context.Background()
	if _, err := lk.Lookup(ctx, "+1"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if _, err := lk.Lookup(ctx, "+1"); err != nil {
		t.Fatal(err)
	}
	if n := upstream.calls.Load(); n != 2 {
		t.Errorf("upstream calls = %d, want 2 (per-service 1s TTL overrides 1h default)", n)
	}
}

func TestWriteRendersEveryService(t *testing.T) {
	cache := New(Config{}, telemetry.NewRegistry())
	var sb strings.Builder
	if err := Write(&sb, cache.Stats()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, svc := range []string{"hlr", "whois", "ctlog", "dnsdb", "avscan", "shortener"} {
		if !strings.Contains(out, svc) {
			t.Errorf("rendered stats missing service %q:\n%s", svc, out)
		}
	}
}
