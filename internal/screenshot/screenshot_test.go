package screenshot

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
	"unicode"
)

var ts = time.Date(2023, 5, 2, 14, 32, 0, 0, time.UTC)

func smsSpec(theme Theme) Spec {
	return Spec{
		Sender:    "+447700900123",
		Timestamp: ts,
		Body:      "Royal Mail: your parcel is held. Pay the fee at https://royalmail-redelivery.top/pay now",
		URL:       "https://royalmail-redelivery.top/pay",
		Theme:     theme,
	}
}

func TestRenderLayout(t *testing.T) {
	img := Render(smsSpec(Themes[0]))
	if img.Kind != KindSMS {
		t.Fatalf("kind = %s", img.Kind)
	}
	var regions []string
	for _, l := range img.Lines {
		regions = append(regions, l.Region)
	}
	if regions[0] != "header" || regions[1] != "sender" {
		t.Errorf("region order = %v", regions)
	}
	// The long URL must be wrapped across >= 2 body lines.
	bodyLines := 0
	for _, l := range img.Lines {
		if l.Region == "body" {
			bodyLines++
			if len(l.Text) > img.Width {
				t.Errorf("line exceeds width: %q", l.Text)
			}
		}
	}
	if bodyLines < 2 {
		t.Errorf("body not wrapped: %d lines", bodyLines)
	}
}

func TestRenderNoTimestamp(t *testing.T) {
	spec := smsSpec(Themes[0])
	spec.Timestamp = time.Time{}
	img := Render(spec)
	for _, l := range img.Lines {
		if l.Region == "header" {
			t.Fatal("header present without timestamp")
		}
	}
	if img.TruthTimestamp != "" {
		t.Error("truth timestamp set")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := Render(smsSpec(Themes[3]))
	b := img.Encode()
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.TruthText != img.TruthText || len(got.Lines) != len(img.Lines) {
		t.Error("round trip lost data")
	}
	if _, err := Decode([]byte("not json")); err == nil {
		t.Error("junk decoded")
	}
}

func TestWrapSplitsLongTokens(t *testing.T) {
	lines := wrap("pay https://a-very-long-domain-name-here.example/with/a/long/path now", 20)
	for _, l := range lines {
		if len(l) > 20 {
			t.Errorf("line too long: %q", l)
		}
	}
	if len(lines) < 3 {
		t.Errorf("expected multiple lines, got %v", lines)
	}
	// Rejoining without spaces must reproduce the URL.
	joined := strings.Join(lines, "")
	if !strings.Contains(joined, "a-very-long-domain-name-here.example/with/a/long/path") {
		t.Error("hard split lost characters")
	}
}

func TestNaiveOCRFailsOnCustomThemes(t *testing.T) {
	img := Render(smsSpec(Theme{Name: "custom-gradient", Contrast: 0.30}))
	_, err := NaiveOCR{}.Extract(img)
	if err != ErrUnreadable {
		t.Fatalf("err = %v, want ErrUnreadable", err)
	}
}

func TestNaiveOCRConfusesGlyphs(t *testing.T) {
	spec := smsSpec(Theme{Name: "samsung-messages", Contrast: 0.55})
	spec.Body = "Illlllllll 1111111111 OO00OO00 validate l1O0 SSS555 " + spec.Body
	img := Render(spec)
	ext, err := NaiveOCR{}.Extract(img)
	if err != nil {
		t.Fatal(err)
	}
	if !ext.OK {
		t.Fatal("naive OCR rejected an SMS image")
	}
	if ext.Text == strings.Join(linesOf(img), "\n") {
		t.Error("no glyph confusion at low contrast")
	}
}

func TestNaiveOCRCannotRejectPosters(t *testing.T) {
	poster := RenderPoster("Beware of parcel scams")
	ext, err := NaiveOCR{}.Extract(poster)
	if err != nil {
		t.Fatal(err)
	}
	if !ext.OK {
		t.Error("naive OCR claims to reject posters — it has no layout model")
	}
}

func TestVisionOCRReadsAllGlyphsButScramblesOrder(t *testing.T) {
	img := Render(smsSpec(Theme{Name: "custom-gradient", Contrast: 0.30}))
	ext, err := VisionOCR{}.Extract(img)
	if err != nil {
		t.Fatal(err)
	}
	// Every line's characters present (perfect recognition)...
	for _, l := range img.Lines {
		if !strings.Contains(ext.Text, l.Text) {
			t.Errorf("vision lost line %q", l.Text)
		}
	}
	// ...but the full URL is NOT reconstructable as a contiguous string.
	noNewlines := strings.ReplaceAll(ext.Text, "\n", "")
	if strings.Contains(noNewlines, img.TruthURL) {
		t.Error("vision output preserved URL contiguity; expected scrambled order")
	}
}

func TestStructuredVisionExtractsAllFields(t *testing.T) {
	img := Render(smsSpec(Themes[5])) // worst theme: structured vision doesn't care
	ext, err := StructuredVision{}.Extract(img)
	if err != nil {
		t.Fatal(err)
	}
	if !ext.OK {
		t.Fatal("structured vision rejected an SMS image")
	}
	if ext.Sender != "+447700900123" {
		t.Errorf("sender = %q", ext.Sender)
	}
	if ext.Timestamp == "" {
		t.Error("timestamp missing")
	}
	if ext.URL != "https://royalmail-redelivery.top/pay" {
		t.Errorf("url = %q", ext.URL)
	}
	if ext.Text != smsSpec(Themes[5]).Body {
		t.Errorf("text = %q", ext.Text)
	}
}

func TestStructuredVisionRejectsDecoys(t *testing.T) {
	for _, img := range []Image{RenderPoster("x"), RenderUnrelated(7)} {
		ext, err := StructuredVision{}.Extract(img)
		if err != nil {
			t.Fatal(err)
		}
		if ext.OK {
			t.Errorf("decoy %s accepted", img.Kind)
		}
	}
}

func TestExtractorLadderFidelity(t *testing.T) {
	// Across all themes, structured vision must recover strictly more URLs
	// than vision OCR, which recovers more text than naive OCR.
	var naiveOK, visionURL, structURL, total int
	for _, theme := range Themes {
		for i := 0; i < 5; i++ {
			spec := smsSpec(theme)
			spec.Timestamp = ts.Add(time.Duration(i) * time.Minute)
			img := Render(spec)
			total++
			if _, err := (NaiveOCR{}).Extract(img); err == nil {
				naiveOK++
			}
			vext, _ := VisionOCR{}.Extract(img)
			if strings.Contains(strings.ReplaceAll(vext.Text, "\n", ""), img.TruthURL) {
				visionURL++
			}
			sext, _ := StructuredVision{}.Extract(img)
			if sext.URL == img.TruthURL {
				structURL++
			}
		}
	}
	if naiveOK == total {
		t.Error("naive OCR read every theme; custom themes should fail")
	}
	if structURL != total {
		t.Errorf("structured vision recovered %d/%d URLs", structURL, total)
	}
	if visionURL >= structURL {
		t.Errorf("vision OCR URL recovery (%d) not below structured (%d)", visionURL, structURL)
	}
}

func linesOf(img Image) []string {
	out := make([]string, len(img.Lines))
	for i, l := range img.Lines {
		out[i] = l.Text
	}
	return out
}

// Property: wrapping never loses characters — rejoining (with hard-split
// awareness) reproduces every non-space rune in order.
func TestWrapLosslessProperty(t *testing.T) {
	f := func(words []string, rawWidth uint8) bool {
		width := int(rawWidth%40) + 4
		var clean []string
		for _, w := range words {
			w = strings.Map(func(r rune) rune {
				if unicode.IsSpace(r) || r < 0x20 {
					return -1
				}
				return r
			}, w)
			if w != "" {
				clean = append(clean, w)
			}
		}
		text := strings.Join(clean, " ")
		lines := wrap(text, width)
		joined := strings.Join(lines, "")
		want := strings.ReplaceAll(text, " ", "")
		got := strings.ReplaceAll(joined, " ", "")
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: rendering and decoding round-trips any printable body.
func TestRenderDecodeProperty(t *testing.T) {
	f := func(body string, sender string) bool {
		spec := Spec{Sender: sender, Body: body, Theme: Themes[0]}
		img := Render(spec)
		decoded, err := Decode(img.Encode())
		if err != nil {
			return false
		}
		return decoded.TruthText == body && decoded.TruthSender == sender
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
