package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func sampleAt(t time.Time, backlog float64) Sample {
	return Sample{At: t, BacklogSeconds: backlog}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSVHeader(&buf); err != nil {
		t.Fatalf("WriteCSVHeader: %v", err)
	}
	in := []Sample{
		{
			At: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC), Rounds: 3,
			ReportsTotal: 120, Records: 80, PendingBatches: 2,
			BacklogSeconds: 1.5, Reports1mTotal: 40, ReportsPerSec: 6.25,
			RoundP95Ms: 42.125, EnrichP95Ms: 9.5, StreamQueueDepth: 7,
			CursorLagMaxSeconds: 0.75, InjectedPosts: 300,
		},
		{At: time.Date(2026, 8, 8, 12, 0, 1, 0, time.UTC)},
	}
	for _, s := range in {
		if err := WriteCSVRow(&buf, s); err != nil {
			t.Fatalf("WriteCSVRow: %v", err)
		}
	}
	out, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d samples, want %d", len(out), len(in))
	}
	got, want := out[0], in[0]
	if !got.At.Equal(want.At) || got.Rounds != want.Rounds ||
		got.ReportsTotal != want.ReportsTotal || got.Records != want.Records ||
		got.PendingBatches != want.PendingBatches ||
		got.BacklogSeconds != want.BacklogSeconds ||
		got.Reports1mTotal != want.Reports1mTotal ||
		got.ReportsPerSec != want.ReportsPerSec ||
		got.RoundP95Ms != want.RoundP95Ms || got.EnrichP95Ms != want.EnrichP95Ms ||
		got.StreamQueueDepth != want.StreamQueueDepth ||
		got.CursorLagMaxSeconds != want.CursorLagMaxSeconds ||
		got.InjectedPosts != want.InjectedPosts {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("nope,header\n1,2\n")); err == nil {
		t.Error("ReadCSV accepted a foreign header")
	}
	var buf bytes.Buffer
	_ = WriteCSVHeader(&buf)
	buf.WriteString("not-a-time,0,0,0,0,0,0,0,0,0,0,0,0\n")
	if _, err := ReadCSV(&buf); err == nil {
		t.Error("ReadCSV accepted an unparseable timestamp")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.95, 3.85},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}

func TestSummarizeAggregates(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	samples := []Sample{
		{At: base, BacklogSeconds: 1, ReportsPerSec: 0, RoundP95Ms: 10,
			EnrichP95Ms: 5, Reports1mTotal: 10, StreamQueueDepth: 1,
			CursorLagMaxSeconds: 0.5, PendingBatches: 1,
			ReportsTotal: 10, Records: 5, InjectedPosts: 20},
		{At: base.Add(time.Second), BacklogSeconds: 3, ReportsPerSec: 8,
			RoundP95Ms: 30, EnrichP95Ms: 15, Reports1mTotal: 30,
			StreamQueueDepth: 4, CursorLagMaxSeconds: 2, PendingBatches: 3,
			ReportsTotal: 18, Records: 12, InjectedPosts: 45},
		{At: base.Add(2 * time.Second), BacklogSeconds: 2, ReportsPerSec: 4,
			RoundP95Ms: 20, EnrichP95Ms: 10, Reports1mTotal: 20,
			StreamQueueDepth: 2, CursorLagMaxSeconds: 1, PendingBatches: 2,
			ReportsTotal: 22, Records: 15, InjectedPosts: 60},
	}
	s, err := Summarize("t", samples, Thresholds{BacklogP95Seconds: 30, MinReports: 1})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.Samples != 3 || !s.StartedAt.Equal(base) || !s.EndedAt.Equal(base.Add(2*time.Second)) {
		t.Errorf("bookkeeping: %+v", s)
	}
	if s.ProjectionBacklogP50Seconds != 2 {
		t.Errorf("backlog p50 = %v, want 2", s.ProjectionBacklogP50Seconds)
	}
	// sorted backlogs 1,2,3: p95 interpolates between 2 and 3 at rank 1.9.
	if math.Abs(s.ProjectionBacklogP95Seconds-2.9) > 1e-9 {
		t.Errorf("backlog p95 = %v, want 2.9", s.ProjectionBacklogP95Seconds)
	}
	if s.ProjectionBacklogMaxSeconds != 3 {
		t.Errorf("backlog max = %v, want 3", s.ProjectionBacklogMaxSeconds)
	}
	if s.RoundP95Ms != 30 || s.EnrichP95MsMax != 15 {
		t.Errorf("latency maxes: round=%v enrich=%v", s.RoundP95Ms, s.EnrichP95MsMax)
	}
	if s.ReportsPerSecAvg != 4 || s.ReportsPerSecMax != 8 {
		t.Errorf("rps: avg=%v max=%v", s.ReportsPerSecAvg, s.ReportsPerSecMax)
	}
	if s.Reports1mTotalAvg != 20 || s.Reports1mTotalMax != 30 {
		t.Errorf("1m totals: avg=%v max=%v", s.Reports1mTotalAvg, s.Reports1mTotalMax)
	}
	if s.ReportsTotal != 22 || s.RecordsTotal != 15 || s.InjectedPosts != 60 {
		t.Errorf("last-sample totals: %+v", s)
	}
	if s.StreamQueueDepthMax != 4 || s.CursorLagMaxSeconds != 2 || s.PendingBatchesMax != 3 {
		t.Errorf("saturation: %+v", s)
	}
	if !s.Pass || len(s.Failures) != 0 {
		t.Errorf("pass = %v failures = %v, want clean pass", s.Pass, s.Failures)
	}
}

func TestSummarizeThresholdBoundaries(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	flat := func(backlog float64, reports int) []Sample {
		return []Sample{{At: base, BacklogSeconds: backlog, ReportsTotal: reports}}
	}

	// The KPI is strict "<": backlog p95 exactly at the target fails.
	s, err := Summarize("t", flat(30, 5), Thresholds{BacklogP95Seconds: 30, MinReports: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Pass {
		t.Error("backlog p95 == target passed; want fail (strict <)")
	}
	s, _ = Summarize("t", flat(29.999, 5), Thresholds{BacklogP95Seconds: 30, MinReports: 1})
	if !s.Pass {
		t.Errorf("backlog p95 just under target failed: %v", s.Failures)
	}

	// MinReports guards against an idle pass.
	s, _ = Summarize("t", flat(1, 0), Thresholds{BacklogP95Seconds: 30, MinReports: 1})
	if s.Pass {
		t.Error("zero reports passed despite MinReports=1")
	}

	// Optional round gate only enforced when set.
	rs := []Sample{{At: base, RoundP95Ms: 900, ReportsTotal: 5}}
	s, _ = Summarize("t", rs, Thresholds{BacklogP95Seconds: 30, MinReports: 1})
	if !s.Pass {
		t.Errorf("unset round gate enforced: %v", s.Failures)
	}
	s, _ = Summarize("t", rs, Thresholds{BacklogP95Seconds: 30, RoundP95Ms: 500, MinReports: 1})
	if s.Pass {
		t.Error("round p95 900 over gate 500 passed")
	}

	if _, err := Summarize("t", nil, Thresholds{}); err == nil {
		t.Error("Summarize accepted an empty timeseries")
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	s, err := Summarize("smoke_1k",
		[]Sample{{At: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC), BacklogSeconds: 1, ReportsTotal: 5}},
		Thresholds{BacklogP95Seconds: 30, MinReports: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSummary(&buf, s); err != nil {
		t.Fatalf("WriteSummary: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`"schema_version": 1`, `"profile": "smoke_1k"`,
		`"projection_backlog_p95_seconds"`, `"pass": true`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary JSON missing %s:\n%s", want, out)
		}
	}
}
