package core

import (
	"context"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/annotate"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/forum"
)

// runStreaming is Run's overlapped mode: curation, enrichment, and
// annotation proceed concurrently, connected by one bounded channel.
// StageWorkers producers curate reports and push records as they settle;
// EnrichWorkers consumers enrich each record (scattering its families up
// to StepWorkers wide) and annotate it on completion, so a record can be
// fully finished while later reports are still being extracted. The
// bounded channel is the backpressure seam: its fill level is exported as
// the pipeline.stream.queue_depth gauge (sustained full means enrichment
// is the bottleneck; sustained empty means curation is).
//
// Tradeoff vs the barrier mode: Dataset.Records lands in completion order,
// which varies run to run, and per-stage spans collapse into one "stream"
// span because the stages no longer have disjoint lifetimes. Failure
// semantics are unchanged — degrade-don't-abort per field, the run dying
// only on ctx death or the AbortFailureRate guard.
func (p *Pipeline) runStreaming(ctx context.Context, reports []forum.RawReport) (*Dataset, error) {
	sp := p.tel.StartSpan("stream")
	defer sp.End()
	ds := &Dataset{
		Records:       make([]Record, 0, len(reports)),
		PostsByForum:  make(map[corpus.Forum]int, len(corpus.Forums)),
		ImagesByForum: make(map[corpus.Forum]int, len(corpus.Forums)),
	}

	var errOnce sync.Once
	var firstErr error
	streamCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	depth := p.opts.StreamBuffer
	if depth == 0 {
		depth = 2 * p.opts.EnrichWorkers
	}
	if depth < 2 {
		depth = 2
	}
	curated := make(chan Record, depth)

	st := &enrichState{}
	var recMu sync.Mutex // guards ds.Records appends from the worker pool
	var wg sync.WaitGroup
	for w := 0; w < p.opts.EnrichWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rec := range curated {
				p.met.queueDepth.Add(-1)
				p.met.busyWorkers.Add(1)
				start := time.Now()
				// Enrich under streamCtx, not the outer ctx: once the
				// fail-latch fires, queued records must fail fast instead of
				// burning their full RecordBudget and appending post-failure
				// records to the Dataset.
				err := p.enrichOne(streamCtx, st, &rec)
				p.met.recordLat.Observe(time.Since(start))
				p.met.busyWorkers.Add(-1)
				if err == nil {
					err = p.abortErr(st)
				}
				if err != nil {
					fail(err)
					return
				}
				if rec.Degraded() {
					p.met.degradedRecs.Inc()
				}
				p.met.enriched.Inc()
				// Annotate on completion: the record is finished the moment
				// enrichment settles, instead of waiting for the whole sweep.
				rec.Annotation = annotate.Annotate(rec.Text, rec.ShownURL)
				p.met.annotated.Inc()
				recMu.Lock()
				ds.Records = append(ds.Records, rec)
				recMu.Unlock()
			}
		}()
	}

	// Curate producers: extraction fans out exactly as in barrier-mode
	// Curate, but each settled record is handed straight to the enrich
	// pool. Collection bookkeeping is folded under a producer-side lock
	// (cheap next to screenshot extraction).
	var curMu sync.Mutex
	parallelFor(streamCtx, len(reports), p.opts.StageWorkers, func(i int) {
		var res curateResult
		res.rec, res.status = p.curateOne(reports[i])
		curMu.Lock()
		ds.PostsByForum[reports[i].Forum]++
		switch res.status {
		case curatedOK:
			p.met.curateOK.Inc()
			if res.rec.FromImage {
				ds.ImagesByForum[reports[i].Forum]++
			}
		case curatedDecoy:
			p.met.curateDecoy.Inc()
			if reports[i].HasAttachment() {
				ds.ImagesByForum[reports[i].Forum]++
			}
			ds.DecoysRejected++
		case curatedEmpty:
			p.met.curateEmpty.Inc()
			ds.EmptyDropped++
		}
		curMu.Unlock()
		if res.status != curatedOK {
			return
		}
		select {
		case curated <- res.rec:
			p.met.queueDepth.Add(1)
		case <-streamCtx.Done():
		}
	})
	// streamCtx inherits the outer ctx, so this check catches an outer
	// cancellation/deadline too; when the fail-latch itself killed the
	// stream the latch already holds firstErr and fail is a no-op.
	if err := streamCtx.Err(); err != nil {
		fail(err)
	}
	close(curated)
	wg.Wait()
	// On an aborted run records may be stranded in the channel; the gauge
	// must not leak their count into the next run's reading.
	p.met.queueDepth.Set(0)
	return ds, firstErr
}
