// Package netutil holds the small HTTP plumbing shared by every simulated
// third-party service (HLR, WHOIS, CT log, passive DNS, AV scanners,
// shorteners) and their clients: a token-bucket rate limiter, JSON
// request/response helpers, and a retrying JSON client with exponential
// backoff honoring Retry-After.
package netutil

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/telemetry"
)

// TokenBucket is a thread-safe token-bucket rate limiter. The zero value is
// unusable; construct with NewTokenBucket.
type TokenBucket struct {
	mu       sync.Mutex
	capacity float64
	tokens   float64
	rate     float64 // tokens per second
	last     time.Time
	now      func() time.Time
}

// NewTokenBucket returns a bucket holding at most capacity tokens refilled
// at ratePerSec. It starts full.
func NewTokenBucket(capacity int, ratePerSec float64) *TokenBucket {
	return &TokenBucket{
		capacity: float64(capacity),
		tokens:   float64(capacity),
		rate:     ratePerSec,
		last:     time.Now(),
		now:      time.Now,
	}
}

// SetClock overrides the time source (tests).
func (b *TokenBucket) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
	b.last = now()
}

// Allow consumes a token if available and reports success.
func (b *TokenBucket) Allow() bool { return b.AllowN(1) }

// AllowN consumes n tokens if available.
func (b *TokenBucket) AllowN(n int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.capacity {
			b.tokens = b.capacity
		}
		b.last = now
	}
	if b.tokens >= float64(n) {
		b.tokens -= float64(n)
		return true
	}
	return false
}

// RetryAfter estimates how long until n tokens are available.
func (b *TokenBucket) RetryAfter(n int) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	deficit := float64(n) - b.tokens
	if deficit <= 0 {
		return 0
	}
	return time.Duration(deficit / b.rate * float64(time.Second))
}

// WriteJSON encodes v to w with the given status code.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError emits a JSON error body {"error": msg}.
func WriteError(w http.ResponseWriter, status int, msg string) {
	WriteJSON(w, status, map[string]string{"error": msg})
}

// WriteRateLimited emits 429 with a Retry-After header.
func WriteRateLimited(w http.ResponseWriter, after time.Duration) {
	secs := int(after.Seconds()) + 1
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	WriteError(w, http.StatusTooManyRequests, "rate limit exceeded")
}

// Client is a minimal retrying JSON API client.
type Client struct {
	BaseURL    string
	APIKey     string       // sent as X-Api-Key when non-empty
	HTTPClient *http.Client // defaults to a 10s-timeout client
	// MaxRetries caps retries on 429/5xx/transport errors: 0 means the
	// default of 3; any negative value disables retrying entirely (the
	// first response, whatever it is, is final).
	MaxRetries int
	Backoff    time.Duration     // base backoff; default 50ms
	Headers    map[string]string // extra headers
	// Sleep is swappable for tests; defaults to a context-aware sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// Metrics, when non-nil, records calls, errors, retries, 429s, and
	// end-to-end latency (backoff included) for every request.
	Metrics *telemetry.ClientMetrics

	// jitterMu guards jitterRng, a lazily seeded per-client source:
	// backoff jitter must not serialize every client in the process on
	// math/rand's global lock.
	jitterMu  sync.Mutex
	jitterRng *rand.Rand
}

// jitter returns a uniform duration in [0, max] from the per-client
// source. max <= 0 yields 0.
func (c *Client) jitter(max int64) time.Duration {
	if max <= 0 {
		return 0
	}
	c.jitterMu.Lock()
	if c.jitterRng == nil {
		c.jitterRng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	d := time.Duration(c.jitterRng.Int63n(max + 1))
	c.jitterMu.Unlock()
	return d
}

// APIError is a non-2xx response with its body message.
type APIError struct {
	Status int
	Body   string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("api error: status %d: %s", e.Status, e.Body)
}

// IsStatus reports whether err is an APIError with the given status.
func IsStatus(err error, status int) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == status
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 10 * time.Second}
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.Sleep != nil {
		return c.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// GetJSON fetches path (relative to BaseURL) and decodes the JSON response
// into out, retrying 429/5xx with exponential backoff plus jitter.
func (c *Client) GetJSON(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, nil, out)
}

// PostJSON sends body as JSON and decodes the response into out.
func (c *Client) PostJSON(ctx context.Context, path string, body, out any) error {
	var buf []byte
	if body != nil {
		var err error
		buf, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("netutil: encode request: %w", err)
		}
	}
	return c.do(ctx, http.MethodPost, path, buf, out)
}

func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	m := c.Metrics
	if m == nil {
		return c.doRetry(ctx, method, path, body, out, nil)
	}
	m.Calls.Inc()
	start := time.Now()
	err := c.doRetry(ctx, method, path, body, out, m)
	m.Latency.Observe(time.Since(start))
	if err != nil {
		m.Errors.Inc()
	}
	return err
}

func (c *Client) doRetry(ctx context.Context, method, path string, body []byte, out any, m *telemetry.ClientMetrics) error {
	retries := c.MaxRetries
	switch {
	case retries == 0:
		retries = 3
	case retries < 0:
		retries = 0 // explicitly disabled: one attempt, no backoff
	}
	backoff := c.Backoff
	if backoff == 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	// retryAfter carries the server's Retry-After hint from the most recent
	// 429/5xx response into the next backoff sleep; the next sleep is
	// max(Retry-After, computed backoff), so the client never retries
	// earlier than the server asked while keeping the exponential floor.
	var retryAfter time.Duration
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			if m != nil {
				m.Retries.Inc()
			}
			d := backoff << (attempt - 1)
			d += c.jitter(int64(d) / 2)
			if retryAfter > d {
				d = retryAfter
			}
			if err := c.sleep(ctx, d); err != nil {
				return err
			}
		}
		retryAfter = 0
		var rdr io.Reader
		if body != nil {
			rdr = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rdr)
		if err != nil {
			return fmt.Errorf("netutil: build request: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.APIKey != "" {
			req.Header.Set("X-Api-Key", c.APIKey)
		}
		for k, v := range c.Headers {
			req.Header.Set(k, v)
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			lastErr = err
			continue // transport error: retry
		}
		data, readErr := io.ReadAll(io.LimitReader(resp.Body, 10<<20))
		resp.Body.Close()
		if readErr != nil {
			lastErr = readErr
			continue
		}
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("netutil: decode response: %w", err)
			}
			return nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
			if m != nil && resp.StatusCode == http.StatusTooManyRequests {
				m.RateLimited.Inc()
			}
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			lastErr = &APIError{Status: resp.StatusCode, Body: truncate(string(data), 200)}
			continue // retryable
		default:
			return &APIError{Status: resp.StatusCode, Body: truncate(string(data), 200)}
		}
	}
	return fmt.Errorf("netutil: %s %s failed after %d attempts: %w", method, path, retries+1, lastErr)
}

// parseRetryAfter interprets a Retry-After header value: delay-seconds
// first, then HTTP-date. Malformed values (and dates in the past) yield 0,
// falling the caller through to its computed backoff.
func parseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// RequireKey wraps an http.Handler requiring X-Api-Key to equal key when
// key is non-empty.
func RequireKey(key string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if key != "" && r.Header.Get("X-Api-Key") != key {
			WriteError(w, http.StatusUnauthorized, "missing or invalid api key")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// ReadJSON decodes a request body into v, limited to 10 MiB.
func ReadJSON(r *http.Request, v any) error {
	defer r.Body.Close()
	dec := json.NewDecoder(io.LimitReader(r.Body, 10<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("netutil: decode body: %w", err)
	}
	return nil
}
