package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/smishkit/smishkit/internal/malware"
)

// Persona is the device identity the crawler presents.
type Persona string

// Crawl personas. The §6 case study found redirects that diverge between
// desktop browsers and Android devices.
const (
	PersonaDesktop Persona = "desktop"
	PersonaAndroid Persona = "android"
)

// userAgents maps personas to User-Agent strings.
var userAgents = map[Persona]string{
	PersonaDesktop: "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/120 Safari/537.36",
	PersonaAndroid: "Mozilla/5.0 (Linux; Android 13; Pixel 7) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/120 Mobile Safari/537.36",
}

// Hop is one step in a redirect chain.
type Hop struct {
	URL    string
	Status int
}

// Outcome classifies where a crawl ended.
type Outcome string

// Crawl outcomes.
const (
	OutcomePhishingPage Outcome = "phishing_page" // HTML landing page
	OutcomeAPKDownload  Outcome = "apk_download"  // drive-by APK
	OutcomeDead         Outcome = "dead"          // 404/410: taken down
	OutcomeError        Outcome = "error"         // transport failure
)

// Result is a full crawl record for one URL under one persona.
type Result struct {
	StartURL string
	Persona  Persona
	Chain    []Hop
	Outcome  Outcome
	FinalURL string
	// APK fields, set when Outcome == OutcomeAPKDownload.
	APKSHA256 string
	APKSize   int
	PageTitle string // set for phishing pages
	Err       error
}

// Crawler fetches URLs without auto-following redirects, so every hop is
// recorded, and sniffs APK payloads by content type, extension, or magic.
type Crawler struct {
	// HTTPClient must not follow redirects itself; NewCrawler configures
	// one correctly.
	HTTPClient *http.Client
	MaxHops    int // redirect-chain bound (default 10)
	// Rewrite maps a target URL to where the request is actually sent
	// (test servers); nil means identity.
	Rewrite func(url string) string
}

// NewCrawler returns a crawler with sane defaults.
func NewCrawler() *Crawler {
	return &Crawler{
		HTTPClient: &http.Client{
			Timeout: 15 * time.Second,
			CheckRedirect: func(req *http.Request, via []*http.Request) error {
				return http.ErrUseLastResponse
			},
		},
		MaxHops: 10,
	}
}

// ErrTooManyHops aborts chains longer than MaxHops.
var ErrTooManyHops = errors.New("crawler: redirect chain too long")

// Crawl follows url under the given persona and classifies the outcome.
func (c *Crawler) Crawl(ctx context.Context, startURL string, persona Persona) Result {
	res := Result{StartURL: startURL, Persona: persona}
	current := startURL
	maxHops := c.MaxHops
	if maxHops <= 0 {
		maxHops = 10
	}
	for hop := 0; ; hop++ {
		if hop >= maxHops {
			res.Outcome = OutcomeError
			res.Err = ErrTooManyHops
			return res
		}
		target := current
		if c.Rewrite != nil {
			target = c.Rewrite(current)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
		if err != nil {
			res.Outcome = OutcomeError
			res.Err = fmt.Errorf("crawler: build request for %q: %w", current, err)
			return res
		}
		req.Header.Set("User-Agent", userAgents[persona])
		resp, err := c.HTTPClient.Do(req)
		if err != nil {
			res.Outcome = OutcomeError
			res.Err = err
			return res
		}
		res.Chain = append(res.Chain, Hop{URL: current, Status: resp.StatusCode})

		switch {
		case resp.StatusCode >= 300 && resp.StatusCode < 400:
			loc := resp.Header.Get("Location")
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if loc == "" {
				res.Outcome = OutcomeError
				res.Err = fmt.Errorf("crawler: redirect without location at %q", current)
				return res
			}
			current = resolveRef(current, loc)
			continue
		case resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusGone:
			resp.Body.Close()
			res.Outcome = OutcomeDead
			res.FinalURL = current
			return res
		case resp.StatusCode >= 400:
			resp.Body.Close()
			res.Outcome = OutcomeError
			res.FinalURL = current
			res.Err = fmt.Errorf("crawler: status %d at %q", resp.StatusCode, current)
			return res
		}

		body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
		resp.Body.Close()
		if err != nil {
			res.Outcome = OutcomeError
			res.Err = err
			return res
		}
		res.FinalURL = current
		if isAPKResponse(resp, current, body) {
			res.Outcome = OutcomeAPKDownload
			res.APKSHA256 = malware.HashBytes(body)
			res.APKSize = len(body)
			return res
		}
		res.Outcome = OutcomePhishingPage
		res.PageTitle = extractTitle(string(body))
		return res
	}
}

// CrawlBoth runs desktop then Android personas, returning both results —
// the workflow that exposed the sa-krs device-dependent redirect.
func (c *Crawler) CrawlBoth(ctx context.Context, url string) (desktop, android Result) {
	return c.Crawl(ctx, url, PersonaDesktop), c.Crawl(ctx, url, PersonaAndroid)
}

// isAPKResponse sniffs APK deliveries by content type, attachment name,
// URL extension, or ZIP magic.
func isAPKResponse(resp *http.Response, url string, body []byte) bool {
	ct := resp.Header.Get("Content-Type")
	if strings.Contains(ct, "android.package-archive") {
		return true
	}
	if strings.Contains(resp.Header.Get("Content-Disposition"), ".apk") {
		return true
	}
	if strings.HasSuffix(strings.ToLower(strings.SplitN(url, "?", 2)[0]), ".apk") {
		return true
	}
	return len(body) > 4 && string(body[:4]) == "PK\x03\x04" && !strings.Contains(ct, "text/html")
}

// resolveRef resolves a possibly relative redirect Location against base.
func resolveRef(base, ref string) string {
	if strings.Contains(ref, "://") {
		return ref
	}
	// Keep scheme://host from base, replace path+query.
	i := strings.Index(base, "://")
	if i < 0 {
		return ref
	}
	rest := base[i+3:]
	if j := strings.IndexAny(rest, "/?"); j >= 0 {
		rest = rest[:j]
	}
	if !strings.HasPrefix(ref, "/") {
		ref = "/" + ref
	}
	return base[:i+3] + rest + ref
}

func extractTitle(html string) string {
	lower := strings.ToLower(html)
	start := strings.Index(lower, "<title>")
	if start < 0 {
		return ""
	}
	start += len("<title>")
	end := strings.Index(lower[start:], "</title>")
	if end < 0 {
		return ""
	}
	return strings.TrimSpace(html[start : start+end])
}

// Router builds Rewrite functions that dispatch logical URLs (the hosts
// that appear in smishing texts) onto the loopback servers simulating them.
// Shortener hosts route to the shortener front end with a "?host=" hint;
// every other host routes to the site server with a "?site=" hint.
type Router struct {
	// ShortenerBase serves hosts listed in ShortenerHosts.
	ShortenerBase  string
	ShortenerHosts map[string]bool
	// SiteBase serves everything else.
	SiteBase string
}

// Rewrite implements the Crawler.Rewrite contract.
func (r *Router) Rewrite(logical string) string {
	host, pathAndQuery := splitURL(logical)
	if host == "" {
		return logical
	}
	if r.ShortenerHosts[strings.ToLower(host)] {
		return r.ShortenerBase + withParam(pathAndQuery, "host", host)
	}
	return r.SiteBase + withParam(pathAndQuery, "site", host)
}

func splitURL(u string) (host, pathAndQuery string) {
	i := strings.Index(u, "://")
	if i < 0 {
		return "", u
	}
	rest := u[i+3:]
	j := strings.IndexAny(rest, "/?")
	if j < 0 {
		return rest, "/"
	}
	host = rest[:j]
	pathAndQuery = rest[j:]
	if strings.HasPrefix(pathAndQuery, "?") {
		pathAndQuery = "/" + pathAndQuery
	}
	return host, pathAndQuery
}

func withParam(pathAndQuery, key, value string) string {
	if strings.Contains(pathAndQuery, key+"=") {
		return pathAndQuery
	}
	sep := "?"
	if strings.Contains(pathAndQuery, "?") {
		sep = "&"
	}
	return pathAndQuery + sep + key + "=" + value
}
