// Package ctlog simulates the certificate-transparency search service the
// paper queried via crt.sh (§3.3.3, §4.5). It stores issuance records for
// every certificate ever issued to a domain — including the 90-day renewal
// chains that inflate Let's Encrypt counts — and serves per-domain searches
// over an HTTP API.
package ctlog

import (
	"context"

	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/netutil"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// Certificate is one logged issuance.
type Certificate struct {
	ID        int64     `json:"id"`
	Domain    string    `json:"domain"` // common name / primary SAN
	IssuerOrg string    `json:"issuer_org"`
	IssuerID  int       `json:"issuer_id"` // CA-specific issuer key id
	NotBefore time.Time `json:"not_before"`
	NotAfter  time.Time `json:"not_after"`
	SANs      []string  `json:"sans,omitempty"`
}

// Store is the in-memory log. Safe for concurrent use after sealing: Append
// during load, then serve reads.
type Store struct {
	mu     sync.RWMutex
	nextID int64
	byDom  map[string][]Certificate
	total  int
}

// NewStore returns an empty log.
func NewStore() *Store { return &Store{byDom: make(map[string][]Certificate), nextID: 1} }

// Append logs a certificate, assigning its ID.
func (s *Store) Append(c Certificate) Certificate {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.ID = s.nextID
	s.nextID++
	key := strings.ToLower(c.Domain)
	s.byDom[key] = append(s.byDom[key], c)
	s.total++
	return c
}

// IssueChain logs a renewal chain: count certificates starting at first,
// each valid for validity and renewed back-to-back. This is how a corpus
// domain's CertCount materializes into log entries.
func (s *Store) IssueChain(domain, issuerOrg string, issuerID int, first time.Time, validity time.Duration, count int) {
	for i := 0; i < count; i++ {
		start := first.Add(time.Duration(i) * validity)
		s.Append(Certificate{
			Domain:    domain,
			IssuerOrg: issuerOrg,
			IssuerID:  issuerID,
			NotBefore: start,
			NotAfter:  start.Add(validity),
		})
	}
}

// Search returns every certificate logged for domain, oldest first.
func (s *Store) Search(domain string) []Certificate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	certs := s.byDom[strings.ToLower(strings.TrimSpace(domain))]
	out := make([]Certificate, len(certs))
	copy(out, certs)
	sort.Slice(out, func(i, j int) bool { return out[i].NotBefore.Before(out[j].NotBefore) })
	return out
}

// Summary condenses a domain's log history.
type Summary struct {
	Domain    string         `json:"domain"`
	Certs     int            `json:"certs"`
	Issuers   map[string]int `json:"issuers"` // issuer org -> cert count
	FirstSeen time.Time      `json:"first_seen"`
	LastSeen  time.Time      `json:"last_seen"`
}

// Summarize aggregates a domain's history without copying every record.
func (s *Store) Summarize(domain string) Summary {
	s.mu.RLock()
	defer s.mu.RUnlock()
	certs := s.byDom[strings.ToLower(strings.TrimSpace(domain))]
	sum := Summary{Domain: strings.ToLower(domain), Issuers: make(map[string]int)}
	for _, c := range certs {
		sum.Certs++
		sum.Issuers[c.IssuerOrg]++
		if sum.FirstSeen.IsZero() || c.NotBefore.Before(sum.FirstSeen) {
			sum.FirstSeen = c.NotBefore
		}
		if c.NotAfter.After(sum.LastSeen) {
			sum.LastSeen = c.NotAfter
		}
	}
	return sum
}

// Totals returns (total certificates, distinct domains).
func (s *Store) Totals() (certs, domains int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.total, len(s.byDom)
}

// Server exposes the log: GET /v1/search?domain=x and /v1/summary?domain=x.
// The public crt.sh has no API key; neither does this.
type Server struct {
	store   *Store
	limiter *netutil.TokenBucket
}

// NewServer wires the store into the HTTP API.
func NewServer(store *Store, ratePerSec float64) *Server {
	s := &Server{store: store}
	if ratePerSec > 0 {
		s.limiter = netutil.NewTokenBucket(int(ratePerSec*2)+1, ratePerSec)
	}
	return s
}

// Handler returns the routed handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/search", s.serve(func(domain string) any { return s.store.Search(domain) }))
	mux.HandleFunc("GET /v1/summary", s.serve(func(domain string) any { return s.store.Summarize(domain) }))
	return mux
}

func (s *Server) serve(fn func(domain string) any) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.limiter != nil && !s.limiter.Allow() {
			netutil.WriteRateLimited(w, s.limiter.RetryAfter(1))
			return
		}
		domain := r.URL.Query().Get("domain")
		if domain == "" {
			netutil.WriteError(w, http.StatusBadRequest, "missing domain parameter")
			return
		}
		netutil.WriteJSON(w, http.StatusOK, fn(domain))
	}
}

// Client consumes the search API.
type Client struct {
	API netutil.Client
}

// NewClient builds a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{API: netutil.Client{BaseURL: baseURL}}
}

// Instrument records this client's calls, errors, retries, 429s, and
// latency into reg under the "ctlog" service name. Returns c for chaining.
func (c *Client) Instrument(reg *telemetry.Registry) *Client {
	c.API.Metrics = telemetry.NewClientMetrics(reg, "ctlog")
	return c
}

// Search fetches the full issuance list for a domain.
func (c *Client) Search(ctx context.Context, domain string) ([]Certificate, error) {
	var out []Certificate
	err := c.API.GetJSON(ctx, "/v1/search?domain="+url.QueryEscape(domain), &out)
	return out, err
}

// Summary fetches the per-domain aggregate.
func (c *Client) Summary(ctx context.Context, domain string) (Summary, error) {
	var out Summary
	err := c.API.GetJSON(ctx, "/v1/summary?domain="+url.QueryEscape(domain), &out)
	return out, err
}

// IssuerID derives a stable per-CA issuer key identifier.
func IssuerID(org string) int {
	h := 0
	for _, r := range org {
		h = h*31 + int(r)
	}
	if h < 0 {
		h = -h
	}
	return h%900 + 100
}
