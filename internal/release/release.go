// Package release implements the paper's published-dataset format
// (Appendix C): pseudo-anonymized JSON-Lines records carrying the sender's
// kind/type/MNO/country instead of raw numbers, the SMS text with PII
// placeholders, translations, and the full labels (scam category, lures,
// language, brand, shortener). Write exports a world; Read loads a release
// back for downstream research — the round trip the paper's artifact
// enables.
package release

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/smishkit/smishkit/internal/corpus"
)

// Record is one published dataset row (Appendix C field list).
type Record struct {
	ID             string   `json:"id"`
	SenderKind     string   `json:"sender_id"` // anonymized: kind only
	SenderType     string   `json:"sender_id_type,omitempty"`
	SenderMNO      string   `json:"sender_original_mno,omitempty"`
	SenderCountry  string   `json:"sender_origin_country,omitempty"`
	Text           string   `json:"text_message"`
	TranslatedText string   `json:"translated_text,omitempty"`
	URLShortener   string   `json:"url_shortener,omitempty"`
	Brand          string   `json:"brand_impersonated,omitempty"`
	ScamCategory   string   `json:"scam_category"`
	SubCategory    string   `json:"sub_category,omitempty"`
	Lures          []string `json:"lure_principles"`
	Language       string   `json:"language"`
	Forum          string   `json:"forum"`
	SentAt         string   `json:"sent_at"`
}

// Options controls export redaction.
type Options struct {
	// Raw keeps raw URLs in texts. The published dataset never does this
	// (Appendix A: URL paths may carry PII); it exists for local debugging.
	Raw bool
}

// FromMessage converts one ground-truth message into a release record.
func FromMessage(m corpus.Message, opts Options) Record {
	rec := Record{
		ID:           m.ID,
		SenderKind:   string(m.Sender.Kind),
		Text:         m.Text,
		ScamCategory: string(m.ScamType),
		SubCategory:  string(m.SubType),
		Language:     m.Language,
		Forum:        string(m.Forum),
		Brand:        m.Brand,
		SentAt:       m.SentAt.Format("2006-01-02T15:04:05Z"),
		URLShortener: m.Shortener,
		Lures:        []string{},
	}
	if m.Language != "en" {
		rec.TranslatedText = m.English
	}
	if m.Sender.NumberType != "" {
		rec.SenderType = string(m.Sender.NumberType)
		rec.SenderMNO = m.Sender.MNO
		rec.SenderCountry = m.Sender.Country
	}
	for _, l := range m.Lures {
		rec.Lures = append(rec.Lures, string(l))
	}
	if !opts.Raw && m.URL != "" {
		rec.Text = strings.ReplaceAll(rec.Text, m.URL, "<URL>")
		rec.TranslatedText = strings.ReplaceAll(rec.TranslatedText, m.URL, "<URL>")
	}
	return rec
}

// Write exports every world message as JSON Lines.
func Write(w io.Writer, world *corpus.World, opts Options) (int, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, m := range world.Messages {
		if err := enc.Encode(FromMessage(m, opts)); err != nil {
			return 0, fmt.Errorf("release: encode %s: %w", m.ID, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, fmt.Errorf("release: flush: %w", err)
	}
	return len(world.Messages), nil
}

// Read loads a release file. Blank lines are skipped; a malformed line
// aborts with its line number.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(raw), &rec); err != nil {
			return nil, fmt.Errorf("release: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("release: read: %w", err)
	}
	return out, nil
}

// Validate checks a release for the anonymization invariants the paper's
// ethics appendix requires: no raw E.164 numbers as sender IDs and no raw
// URLs in redacted texts. It returns the first violation.
func Validate(records []Record, redacted bool) error {
	for i, rec := range records {
		if strings.HasPrefix(rec.SenderKind, "+") {
			return fmt.Errorf("release: record %d (%s): raw sender id leaked", i, rec.ID)
		}
		if redacted && (strings.Contains(rec.Text, "https://") || strings.Contains(rec.Text, "http://")) {
			return fmt.Errorf("release: record %d (%s): raw URL leaked", i, rec.ID)
		}
		if rec.ScamCategory == "" || rec.Language == "" {
			return fmt.Errorf("release: record %d (%s): missing labels", i, rec.ID)
		}
	}
	return nil
}
