// Command smishgen generates a synthetic smishing corpus and exports it in
// the paper's published-dataset format (Appendix C): pseudo-anonymized
// JSON Lines with sender kind/type/MNO/country, redacted texts,
// translations, and full labels.
//
// Usage:
//
//	smishgen [-seed N] [-messages N] [-o file] [-raw] [-validate file]
package main

import (
	"flag"
	"log"
	"os"

	"github.com/smishkit/smishkit"
	"github.com/smishkit/smishkit/internal/release"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smishgen: ")

	seed := flag.Int64("seed", 1, "generation seed")
	messages := flag.Int("messages", 4000, "corpus size")
	out := flag.String("o", "-", "output file (default stdout)")
	raw := flag.Bool("raw", false, "include raw URLs (do NOT publish)")
	validate := flag.String("validate", "", "validate an existing release file and exit")
	flag.Parse()

	if *validate != "" {
		f, err := os.Open(*validate)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		records, err := release.Read(f)
		if err != nil {
			log.Fatal(err)
		}
		if err := release.Validate(records, true); err != nil {
			log.Fatalf("validation FAILED: %v", err)
		}
		log.Printf("%s: %d records, anonymization invariants hold", *validate, len(records))
		return
	}

	w := smishkit.GenerateWorld(smishkit.WorldConfig{Seed: *seed, Messages: *messages})

	var f *os.File
	if *out == "-" {
		f = os.Stdout
	} else {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
	}
	n, err := release.Write(f, w, release.Options{Raw: *raw})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d records", n)
}
