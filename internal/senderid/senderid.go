// Package senderid classifies SMS sender IDs. A smishing sender ID is a
// phone number, an email address (iMessage-style sending), or an
// alphanumeric shortcode spoofed through an SMS aggregator (§3.3.1, §4.1).
// For phone numbers it provides E.164 parsing with country detection and
// per-country numbering-plan rules that distinguish mobile, landline, VoIP,
// toll-free and friends — the taxonomy behind Table 3.
package senderid

import (
	"errors"
	"regexp"
	"strings"
)

// Kind is the top-level sender-ID category (§4.1).
type Kind string

// Sender-ID kinds. Redacted covers user-censored IDs ("+44 74** ***123",
// "[redacted]") that cannot be attributed.
const (
	KindPhone        Kind = "phone"
	KindEmail        Kind = "email"
	KindAlphanumeric Kind = "alphanumeric"
	KindRedacted     Kind = "redacted"
	KindUnknown      Kind = "unknown"
)

var (
	emailRe = regexp.MustCompile(`^[a-zA-Z0-9._%+-]+@[a-zA-Z0-9.-]+\.[a-zA-Z]{2,}$`)
	// Alphanumeric sender IDs are up to 11 GSM characters with at least
	// one letter (GSM 03.38 / TP-OA alphanumeric addressing).
	alphaRe    = regexp.MustCompile(`^[A-Za-z0-9 ._-]{1,11}$`)
	hasLetter  = regexp.MustCompile(`[A-Za-z]`)
	redactedRe = regexp.MustCompile(`[*xX•#]{2,}|\[redacted\]|\[removed\]|<hidden>`)
)

// Classify returns the Kind of a raw sender ID string.
func Classify(raw string) Kind {
	s := strings.TrimSpace(raw)
	if s == "" {
		return KindUnknown
	}
	if redactedRe.MatchString(s) {
		return KindRedacted
	}
	if emailRe.MatchString(s) {
		return KindEmail
	}
	digits := digitsOf(s)
	switch {
	case len(digits) >= 5 && isPhoneShaped(s):
		return KindPhone
	case len(digits) >= 3 && len(digits) <= 6 && len(digits) == len(s):
		// 3-6 digit shortcodes (e.g. banks' 567676) count as phone-side
		// addressing: they ride the operator shortcode plan.
		return KindPhone
	case alphaRe.MatchString(s) && hasLetter.MatchString(s):
		return KindAlphanumeric
	default:
		return KindUnknown
	}
}

// isPhoneShaped accepts digits with optional +, spaces, hyphens, dots,
// parentheses — and nothing else.
func isPhoneShaped(s string) bool {
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case r == '+' && i == 0:
		case r == ' ' || r == '-' || r == '.' || r == '(' || r == ')':
		default:
			return false
		}
	}
	return true
}

func digitsOf(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Number is a parsed E.164-style phone number.
type Number struct {
	Raw      string // original input
	E164     string // +<cc><nsn>, best-effort canonical form
	DialCode string // country calling code, e.g. "44"
	Country  string // ISO 3166-1 alpha-3, e.g. "GBR"; "" if unresolvable
	NSN      string // national significant number (digits after dial code)
}

// Parse errors.
var (
	ErrNotPhone  = errors.New("senderid: not a phone-shaped sender ID")
	ErrBadFormat = errors.New("senderid: phone number has invalid format")
)

// dialCodes maps country calling codes to ISO alpha-3, longest-prefix
// matched. Shared-code NANP (+1) resolves to USA (the corpus does not
// distinguish Canadian numbers, mirroring HLR behaviour on unported data).
var dialCodes = map[string]string{
	"1": "USA", "7": "RUS", "20": "EGY", "27": "ZAF", "30": "GRC",
	"31": "NLD", "32": "BEL", "33": "FRA", "34": "ESP", "36": "HUN",
	"39": "ITA", "40": "ROU", "41": "CHE", "43": "AUT", "44": "GBR",
	"45": "DNK", "46": "SWE", "47": "NOR", "48": "POL", "49": "DEU",
	"51": "PER", "54": "ARG", "56": "CHL", "57": "COL",
	"52": "MEX", "55": "BRA", "60": "MYS", "61": "AUS", "62": "IDN",
	"63": "PHL", "64": "NZL", "65": "SGP", "66": "THA", "81": "JPN",
	"82": "KOR", "84": "VNM", "86": "CHN", "90": "TUR", "91": "IND",
	"92": "PAK", "94": "LKA", "98": "IRN", "212": "MAR", "233": "GHA",
	"234": "NGA", "243": "COD", "254": "KEN", "265": "MWI", "351": "PRT",
	"352": "LUX", "353": "IRL", "380": "UKR", "420": "CZE", "421": "SVK",
	"590": "GLP", "852": "HKG", "880": "BGD", "971": "ARE", "974": "QAT",
	"972": "ISR", "358": "FIN", "251": "ETH", "995": "GEO",
}

// nsnLengths gives the valid national-number digit-length range per country
// (approximate ITU plans; used for the Bad Format check in Table 3).
var nsnLengths = map[string][2]int{
	"USA": {10, 10}, "GBR": {9, 10}, "IND": {10, 10}, "NLD": {9, 9},
	"ESP": {9, 9}, "AUS": {9, 9}, "FRA": {9, 9}, "BEL": {8, 9},
	"IDN": {8, 12}, "DEU": {7, 11}, "ITA": {8, 11}, "IRL": {9, 9},
	"PRT": {9, 9}, "CZE": {9, 9}, "JPN": {9, 10}, "CHN": {11, 11},
	"RUS": {10, 10}, "ZAF": {9, 9}, "KEN": {9, 9}, "NGA": {10, 10},
	"GHA": {9, 9}, "PAK": {10, 10}, "LKA": {9, 9}, "TUR": {10, 10},
	"UKR": {9, 9}, "HUN": {9, 9}, "ROU": {9, 9}, "QAT": {8, 8},
	"NZL": {8, 10}, "GLP": {9, 9}, "MWI": {9, 9}, "COD": {9, 9},
	"HKG": {8, 8}, "SGP": {8, 8}, "MYS": {9, 10}, "PHL": {10, 10},
	"BRA": {10, 11}, "MEX": {10, 10}, "KOR": {9, 10}, "VNM": {9, 10},
	"ARG": {10, 10}, "COL": {10, 10}, "CHL": {9, 9}, "PER": {9, 9},
	"ISR": {9, 9}, "FIN": {9, 10}, "ETH": {9, 9}, "GEO": {9, 9},
	"THA": {9, 9}, "DNK": {8, 8}, "NOR": {8, 8}, "GRC": {10, 10},
}

// defaultNSNRange is used for countries without an entry above.
var defaultNSNRange = [2]int{7, 12}

// maxE164Digits is the ITU-T E.164 limit (15 digits including dial code).
const maxE164Digits = 15

// ParsePhone parses raw into a Number. Inputs without a leading + are
// accepted when they begin with a recognizable dial code and are long enough
// to be international form. An error of ErrBadFormat still returns the
// partially parsed number so callers can count "Bad Format" entries.
func ParsePhone(raw string) (Number, error) {
	s := strings.TrimSpace(raw)
	if Classify(s) != KindPhone {
		return Number{Raw: raw}, ErrNotPhone
	}
	digits := digitsOf(s)
	hadPlus := strings.HasPrefix(s, "+")
	// Strip international call prefix 00.
	if !hadPlus && strings.HasPrefix(digits, "00") && len(digits) > 8 {
		digits = digits[2:]
		hadPlus = true
	}
	n := Number{Raw: raw}
	if len(digits) > maxE164Digits {
		// Random over-long sender IDs (§4.1's spoofed "more digits than
		// any valid number" case).
		n.E164 = "+" + digits
		return n, ErrBadFormat
	}
	cc, iso := matchDialCode(digits)
	if hadPlus && cc == "" {
		n.E164 = "+" + digits
		return n, ErrBadFormat
	}
	if !hadPlus {
		// National-format numbers cannot be attributed to a country here;
		// the HLR resolves them via the reporting context. Treat 7+ digit
		// national numbers as parseable but countryless.
		if len(digits) < 7 {
			n.E164 = digits
			return n, ErrBadFormat
		}
		n.E164 = digits
		n.NSN = digits
		return n, nil
	}
	n.DialCode = cc
	n.Country = iso
	n.NSN = digits[len(cc):]
	n.E164 = "+" + digits
	lo, hi := nsnRange(iso)
	if len(n.NSN) < lo || len(n.NSN) > hi {
		return n, ErrBadFormat
	}
	return n, nil
}

// NSNRange returns the valid national-number digit-length range for an ISO
// alpha-3 country, falling back to the generic ITU bounds.
func NSNRange(iso string) (lo, hi int) { return nsnRange(iso) }

func nsnRange(iso string) (int, int) {
	if r, ok := nsnLengths[iso]; ok {
		return r[0], r[1]
	}
	return defaultNSNRange[0], defaultNSNRange[1]
}

// matchDialCode finds the longest dial code that prefixes digits.
func matchDialCode(digits string) (cc, iso string) {
	for take := 3; take >= 1; take-- {
		if len(digits) < take {
			continue
		}
		if country, ok := dialCodes[digits[:take]]; ok {
			return digits[:take], country
		}
	}
	return "", ""
}

// Countries returns the ISO codes with dial-code support, for tests and
// corpus generation.
func Countries() []string {
	seen := make(map[string]bool)
	var out []string
	for _, iso := range dialCodes {
		if !seen[iso] {
			seen[iso] = true
			out = append(out, iso)
		}
	}
	return out
}

// DialCodeFor returns the calling code for an ISO alpha-3 country ("" if
// unknown). Shared codes return the canonical owner's code.
func DialCodeFor(iso string) string {
	best := ""
	for code, c := range dialCodes {
		if c != iso {
			continue
		}
		if best == "" || len(code) < len(best) {
			best = code
		}
	}
	return best
}
