// Package annotate reproduces the paper's GPT-4o text annotation (§3.3.6)
// with deterministic, lexicon-driven classifiers: language identification
// over scripts and stopword profiles, scam-type classification against the
// eight-category taxonomy, impersonated-brand NER hardened against
// leetspeak/homoglyph evasion, and Stajano–Wilson lure detection. A kappa
// evaluation harness (§3.4) scores the annotators against golden labels.
package annotate

import (
	"strings"
	"unicode"

	"github.com/smishkit/smishkit/internal/textnorm"
)

// languageProfiles hold high-frequency function words per Latin-script
// language. Scores count profile hits among tokens.
var languageProfiles = map[string][]string{
	"en": {"the", "your", "you", "has", "been", "is", "at", "to", "was", "please", "account", "we", "of", "and", "now", "or", "if", "this"},
	"es": {"su", "ha", "sido", "por", "en", "los", "las", "usted", "para", "con", "del", "una", "cuenta", "pague", "antes", "nuestro", "gane"},
	"nl": {"uw", "is", "een", "het", "van", "wegens", "via", "wij", "niet", "de", "voor", "nieuwe", "vandaag", "verloopt", "mijn"},
	"fr": {"votre", "vous", "une", "les", "des", "sur", "est", "suite", "cher", "pour", "sous", "nous", "avez", "frais"},
	"de": {"ihr", "ihre", "sie", "wurde", "unter", "der", "die", "das", "wegen", "bitte", "und", "ist", "mein", "eine", "sehr"},
	"it": {"il", "suo", "sua", "per", "stato", "stata", "della", "conferma", "gentile", "su", "non", "vinto", "alla"},
	"id": {"anda", "yang", "dari", "untuk", "akan", "kami", "di", "ini", "dengan", "dapatkan", "karena", "biaya"},
	"pt": {"sua", "foi", "por", "para", "uma", "não", "nao", "em", "dos", "meu", "você", "voce", "ganhou", "taxa"},
	"tl": {"ang", "mo", "mga", "iyong", "kumita", "kada", "gamit", "dito", "nanalo", "namin"},
	"cs": {"vaše", "vase", "byl", "pozastaven", "údaje", "udaje", "čeká", "ceka", "poplatek", "uhraďte", "uhradte", "zásilka", "nezdařila"},
	"tr": {"bir", "için", "icin", "hesabınız", "hesabiniz", "bilgilerinizi", "ücreti", "ucreti", "kargonuz"},
	"pl": {"twoja", "twoje", "została", "zostala", "paczka", "dane", "konto", "oczekuje"},
	"sv": {"ditt", "din", "har", "på", "pa", "paket", "avgiften", "konto", "väntar", "vantar"},
	"sw": {"yako", "kwa", "imesimamishwa", "taarifa", "akaunti", "thibitisha"},
	"af": {"jou", "is", "weens", "verdagte", "rekening", "opgeskort"},
	"hu": {"az", "ön", "on", "csomagja", "díjat", "dijat", "itt", "fizesse"},
	"ro": {"dvs", "a", "fost", "contul", "datele", "la", "suspendat"},
	"vi": {"cua", "ban", "da", "tai", "khoan", "xac", "minh", "thong", "tin", "bi", "tam", "khoa"},
	"da": {"din", "pakke", "afventer", "levering", "betal", "gebyret", "pa"},
	"no": {"kontoen", "din", "er", "sperret", "grunn", "av", "mistenkelig", "bekreft"},
	"fi": {"pakettisi", "odottaa", "toimitusta", "maksa", "maksu", "osoitteessa"},
	"ms": {"akaun", "anda", "telah", "digantung", "sahkan", "maklumat", "di"},
}

// scriptRanges identify languages by their writing system; these win over
// stopword profiles when non-Latin characters dominate.
var scriptRanges = []struct {
	lang  string
	table *unicode.RangeTable
}{
	{"ja", unicode.Hiragana},
	{"ja", unicode.Katakana},
	{"ko", unicode.Hangul},
	{"hi", unicode.Devanagari},
	{"ar", unicode.Arabic}, // Urdu also uses Arabic script; see below
	{"si", unicode.Sinhala},
	{"th", unicode.Thai},
	{"he", unicode.Hebrew},
	{"el", unicode.Greek},
	{"bn", unicode.Bengali},
	{"ta", unicode.Tamil},
	{"te", unicode.Telugu},
	{"am", unicode.Ethiopic},
	{"ka", unicode.Georgian},
	{"uk", unicode.Cyrillic}, // disambiguated from ru by letters
	{"zh", unicode.Han},
}

// farsiMarkers distinguish Persian from Arabic/Urdu within Arabic script.
var farsiMarkers = []rune{'ژ', 'گ', 'چ', 'پ', 'ک', 'ی'} // Keheh/Farsi-Yeh: Perso-Arabic, not Arabic

// urduMarkers distinguish Urdu from Arabic within the Arabic script.
var urduMarkers = []rune{'ے', 'ڈ', 'ٹ', 'ں'} // Keheh/Gaf excluded: shared with Persian

// ukrainianMarkers distinguish Ukrainian from Russian within Cyrillic.
var ukrainianMarkers = []rune{'ї', 'є', 'і', 'ґ'}

// DetectLanguage identifies the language of an SMS text, returning an
// ISO 639-1 code. Unknown or empty inputs return "en" (the corpus default),
// matching the annotation prompt's behavior of always returning a code.
func DetectLanguage(text string) string {
	if strings.TrimSpace(text) == "" {
		return "en"
	}
	if lang := detectScript(text); lang != "" {
		return lang
	}
	tokens := textnorm.Tokenize(text)
	if len(tokens) == 0 {
		return "en"
	}
	tokenSet := make(map[string]bool, len(tokens))
	for _, tok := range tokens {
		tokenSet[tok] = true
	}
	best, bestScore := "en", 0
	for _, lang := range profileOrder {
		score := 0
		for _, w := range languageProfiles[lang] {
			if tokenSet[w] {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = lang, score
		}
	}
	if bestScore == 0 {
		return "en"
	}
	return best
}

// profileOrder fixes iteration order for deterministic ties ("en" first so
// English wins draws).
var profileOrder = []string{
	"en", "es", "nl", "fr", "de", "it", "id", "pt", "tl", "cs", "tr",
	"pl", "sv", "sw", "af", "hu", "ro", "vi", "da", "no", "fi", "ms",
}

func detectScript(text string) string {
	counts := map[string]int{}
	total := 0
	for _, r := range text {
		if !unicode.IsLetter(r) {
			continue
		}
		total++
		for _, sr := range scriptRanges {
			if unicode.Is(sr.table, r) {
				counts[sr.lang]++
				break
			}
		}
	}
	if total == 0 {
		return ""
	}
	best, bestN := "", 0
	for _, sr := range scriptRanges {
		if n := counts[sr.lang]; n > bestN {
			best, bestN = sr.lang, n
		}
	}
	// Require the script to dominate the letters.
	if best == "" || bestN*3 < total {
		return ""
	}
	switch best {
	case "ar":
		for _, m := range urduMarkers {
			if strings.ContainsRune(text, m) {
				return "ur"
			}
		}
		for _, m := range farsiMarkers {
			if strings.ContainsRune(text, m) {
				return "fa"
			}
		}
		return "ar"
	case "uk":
		for _, m := range ukrainianMarkers {
			if strings.ContainsRune(text, m) {
				return "uk"
			}
		}
		return "ru"
	}
	return best
}
