package stats

import (
	"math"
	"sort"
)

// KSResult holds the outcome of a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	// D is the KS statistic: the supremum distance between the two
	// empirical CDFs. Always in [0, 1].
	D float64
	// P is the asymptotic two-sided p-value from the Kolmogorov
	// distribution with the standard effective-sample-size correction.
	P float64
	// N1, N2 are the two sample sizes.
	N1, N2 int
}

// Significant reports whether the test rejects equality at level alpha.
func (r KSResult) Significant(alpha float64) bool { return r.P < alpha }

// KolmogorovSmirnov runs the two-sample KS test the paper uses (§5.1) to
// compare the distribution of smishing send times across weekdays.
// It returns an error only for empty samples.
func KolmogorovSmirnov(a, b []float64) (KSResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{}, ErrEmpty
	}
	x := make([]float64, len(a))
	copy(x, a)
	sort.Float64s(x)
	y := make([]float64, len(b))
	copy(y, b)
	sort.Float64s(y)

	var d float64
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		v := math.Min(x[i], y[j])
		for i < len(x) && x[i] <= v {
			i++
		}
		for j < len(y) && y[j] <= v {
			j++
		}
		fx := float64(i) / float64(len(x))
		fy := float64(j) / float64(len(y))
		if diff := math.Abs(fx - fy); diff > d {
			d = diff
		}
	}

	n1, n2 := float64(len(x)), float64(len(y))
	ne := n1 * n2 / (n1 + n2)
	p := ksPValue(d, ne)
	return KSResult{D: d, P: p, N1: len(x), N2: len(y)}, nil
}

// ksPValue evaluates the asymptotic Kolmogorov distribution survival
// function Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2)
// with the Stephens small-sample correction, as in Numerical Recipes.
func ksPValue(d, ne float64) float64 {
	sqrtNe := math.Sqrt(ne)
	lambda := (sqrtNe + 0.12 + 0.11/sqrtNe) * d
	if lambda <= 0 {
		return 1
	}
	const eps1, eps2 = 1e-6, 1e-16
	a2 := -2 * lambda * lambda
	sum, prevTerm, sign := 0.0, 0.0, 1.0
	for k := 1; k <= 100; k++ {
		term := sign * 2 * math.Exp(a2*float64(k)*float64(k))
		sum += term
		abs := math.Abs(term)
		if abs <= eps1*prevTerm || abs <= eps2*sum {
			return clamp01(sum)
		}
		sign = -sign
		prevTerm = abs
	}
	return 1 // failed to converge: treat as indistinguishable
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}
