package release

import (
	"bytes"
	"strings"
	"testing"

	"github.com/smishkit/smishkit/internal/corpus"
)

func TestWriteReadRoundTrip(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: 51, Messages: 500})
	var buf bytes.Buffer
	n, err := Write(&buf, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("wrote %d", n)
	}
	records, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 500 {
		t.Fatalf("read %d", len(records))
	}
	for i, rec := range records {
		m := w.Messages[i]
		if rec.ID != m.ID || rec.ScamCategory != string(m.ScamType) || rec.Language != m.Language {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, rec, m)
		}
	}
}

func TestRedactionInvariants(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: 52, Messages: 800})
	var buf bytes.Buffer
	if _, err := Write(&buf, w, Options{}); err != nil {
		t.Fatal(err)
	}
	records, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(records, true); err != nil {
		t.Fatal(err)
	}
	// URL-bearing messages carry the placeholder.
	placeholders := 0
	for _, rec := range records {
		if strings.Contains(rec.Text, "<URL>") {
			placeholders++
		}
	}
	if placeholders == 0 {
		t.Error("no URL placeholders in redacted release")
	}
}

func TestRawModeKeepsURLs(t *testing.T) {
	w := corpus.Generate(corpus.Config{Seed: 53, Messages: 400})
	var buf bytes.Buffer
	if _, err := Write(&buf, w, Options{Raw: true}); err != nil {
		t.Fatal(err)
	}
	records, _ := Read(&buf)
	raws := 0
	for _, rec := range records {
		if strings.Contains(rec.Text, "https://") {
			raws++
		}
	}
	if raws == 0 {
		t.Error("raw mode stripped URLs")
	}
	if err := Validate(records, true); err == nil {
		t.Error("validator accepted raw URLs in redacted mode")
	}
	if err := Validate(records, false); err != nil {
		t.Errorf("validator rejected raw-mode release: %v", err)
	}
}

func TestReadSkipsBlankRejectsJunk(t *testing.T) {
	good := `{"id":"m1","sender_id":"phone","text_message":"x","scam_category":"banking","lure_principles":[],"language":"en","forum":"twitter","sent_at":"2023-01-01T00:00:00Z"}`
	records, err := Read(strings.NewReader(good + "\n\n" + good + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("records = %d", len(records))
	}
	if _, err := Read(strings.NewReader(good + "\nnot-json\n")); err == nil {
		t.Error("junk line accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error lacks line number: %v", err)
	}
}

func TestValidateCatchesLeaks(t *testing.T) {
	bad := []Record{{ID: "x", SenderKind: "+447700900123", ScamCategory: "banking", Language: "en"}}
	if err := Validate(bad, true); err == nil {
		t.Error("raw sender accepted")
	}
	missing := []Record{{ID: "y", SenderKind: "phone"}}
	if err := Validate(missing, true); err == nil {
		t.Error("missing labels accepted")
	}
}
