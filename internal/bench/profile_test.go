package bench

import (
	"strings"
	"testing"
	"time"
)

func TestParseProfileDefaults(t *testing.T) {
	p, err := ParseProfile(strings.NewReader(""), "empty")
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if p.Name != "empty" {
		t.Errorf("Name = %q, want empty", p.Name)
	}
	if p.Duration != 60*time.Second {
		t.Errorf("Duration = %v, want 60s", p.Duration)
	}
	if p.BaseRPS != 5 {
		t.Errorf("BaseRPS = %v, want 5", p.BaseRPS)
	}
	if p.BurstRPS != 5 {
		t.Errorf("BurstRPS = %v, want BaseRPS (5)", p.BurstRPS)
	}
	if p.WaveMessages != 25 {
		t.Errorf("WaveMessages = %d, want 25", p.WaveMessages)
	}
	if p.TargetBacklogP95 != 30 {
		t.Errorf("TargetBacklogP95 = %v, want 30", p.TargetBacklogP95)
	}
	if p.MinReports != 1 {
		t.Errorf("MinReports = %d, want 1", p.MinReports)
	}
	if p.SampleInterval != time.Second {
		t.Errorf("SampleInterval = %v, want 1s", p.SampleInterval)
	}
	if p.WatchGrace != 10*time.Second {
		t.Errorf("WatchGrace = %v, want 10s", p.WatchGrace)
	}
	if p.ShardFailover {
		t.Error("ShardFailover defaults to true, want false")
	}
	if p.ShardProbe != time.Second {
		t.Errorf("ShardProbe = %v, want 1s", p.ShardProbe)
	}
}

func TestParseProfileShardFailover(t *testing.T) {
	src := "BENCH_SHARDS=4\nBENCH_SHARD_FAILOVER=1\nBENCH_SHARD_PROBE_MS=500\n"
	p, err := ParseProfile(strings.NewReader(src), "failover")
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if !p.ShardFailover {
		t.Error("ShardFailover not parsed")
	}
	if p.ShardProbe != 500*time.Millisecond {
		t.Errorf("ShardProbe = %v, want 500ms", p.ShardProbe)
	}
	off, err := ParseProfile(strings.NewReader("BENCH_SHARDS=4\nBENCH_SHARD_FAILOVER=0\n"), "off")
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if off.ShardFailover {
		t.Error("BENCH_SHARD_FAILOVER=0 parsed as on")
	}
}

func TestParseProfileFull(t *testing.T) {
	src := `# heavy profile
BENCH_DURATION_SECONDS=120
BENCH_BASE_RPS=20
BENCH_BURST_RPS=80
BENCH_BURST_EVERY_SECONDS=30
BENCH_BURST_LEN_SECONDS=10

BENCH_WAVE_MESSAGES=50
BENCH_FORUMS="reddit, twitter"
BENCH_NOISE_FRACTION=0.25
BENCH_SEED=42
BENCH_WORLD_MESSAGES=10000
BENCH_CHAOS=0.1
BENCH_POLL_MS=250
BENCH_SAMPLE_INTERVAL_SECONDS=2
BENCH_WATCH_GRACE_SECONDS=15
BENCH_TARGET_PROJECTION_BACKLOG_P95_SECONDS=45
BENCH_TARGET_ROUND_P95_MS=500
BENCH_MIN_REPORTS=100
`
	p, err := ParseProfile(strings.NewReader(src), "heavy")
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if p.Duration != 120*time.Second || p.BaseRPS != 20 || p.BurstRPS != 80 {
		t.Errorf("rates: %+v", p)
	}
	if p.BurstEvery != 30*time.Second || p.BurstLen != 10*time.Second {
		t.Errorf("burst windows: every=%v len=%v", p.BurstEvery, p.BurstLen)
	}
	if len(p.Forums) != 2 || p.Forums[0] != "reddit" || p.Forums[1] != "twitter" {
		t.Errorf("Forums = %v", p.Forums)
	}
	if p.NoiseFraction != 0.25 || p.Seed != 42 || p.Chaos != 0.1 {
		t.Errorf("noise/seed/chaos: %+v", p)
	}
	if p.PollInterval != 250*time.Millisecond {
		t.Errorf("PollInterval = %v", p.PollInterval)
	}
	th := p.Thresholds()
	if th.BacklogP95Seconds != 45 || th.RoundP95Ms != 500 || th.MinReports != 100 {
		t.Errorf("Thresholds = %+v", th)
	}
}

func TestParseProfileRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"unknown key":         "BENCH_TYPO_KEY=1\n",
		"non-bench key":       "PATH=/usr/bin\n",
		"missing equals":      "BENCH_BASE_RPS 5\n",
		"non-numeric":         "BENCH_BASE_RPS=fast\n",
		"negative":            "BENCH_DURATION_SECONDS=-5\n",
		"noise above one":     "BENCH_NOISE_FRACTION=1.5\n",
		"chaos above one":     "BENCH_CHAOS=2\n",
		"zero duration":       "BENCH_DURATION_SECONDS=0\n",
		"zero base rps":       "BENCH_BASE_RPS=0\n",
		"zero wave":           "BENCH_WAVE_MESSAGES=0\n",
		"zero backlog gate":   "BENCH_TARGET_PROJECTION_BACKLOG_P95_SECONDS=0\n",
		"burst len > cadence": "BENCH_BURST_EVERY_SECONDS=5\nBENCH_BURST_LEN_SECONDS=10\n",
		"failover not 0/1":    "BENCH_SHARDS=2\nBENCH_SHARD_FAILOVER=yes\n",
		"failover unsharded":  "BENCH_SHARD_FAILOVER=1\n",
		"negative probe":      "BENCH_SHARD_PROBE_MS=-100\n",
	}
	for name, src := range cases {
		if _, err := ParseProfile(strings.NewReader(src), name); err == nil {
			t.Errorf("%s: ParseProfile accepted %q", name, src)
		}
	}
}

func TestRateAt(t *testing.T) {
	p := Profile{BaseRPS: 5, BurstRPS: 50, BurstEvery: 30 * time.Second, BurstLen: 10 * time.Second}
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{0, 50},                // burst window opens at t=0
		{9 * time.Second, 50},  // still inside
		{10 * time.Second, 5},  // window closed
		{29 * time.Second, 5},  // just before next window
		{30 * time.Second, 50}, // next window opens
		{45 * time.Second, 5},
	}
	for _, c := range cases {
		if got := p.RateAt(c.t); got != c.want {
			t.Errorf("RateAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	flat := Profile{BaseRPS: 5, BurstRPS: 50}
	if got := flat.RateAt(time.Second); got != 5 {
		t.Errorf("no-cadence RateAt = %v, want BaseRPS", got)
	}
}
