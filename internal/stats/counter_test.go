package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	if c.Total() != 0 || c.Len() != 0 {
		t.Fatalf("fresh counter not empty: total=%d len=%d", c.Total(), c.Len())
	}
	c.Add("a")
	c.Add("a")
	c.Add("b")
	if got := c.Count("a"); got != 2 {
		t.Errorf("Count(a) = %d, want 2", got)
	}
	if got := c.Count("missing"); got != 0 {
		t.Errorf("Count(missing) = %d, want 0", got)
	}
	if got := c.Total(); got != 3 {
		t.Errorf("Total = %d, want 3", got)
	}
	if got := c.Share("a"); got != 2.0/3.0 {
		t.Errorf("Share(a) = %v, want 2/3", got)
	}
}

func TestCounterShareEmpty(t *testing.T) {
	c := NewCounter()
	if got := c.Share("x"); got != 0 {
		t.Errorf("Share on empty counter = %v, want 0", got)
	}
}

func TestCounterAddN(t *testing.T) {
	c := NewCounter()
	c.AddN("x", 10)
	c.AddN("x", -4)
	if got := c.Count("x"); got != 6 {
		t.Errorf("Count(x) = %d, want 6", got)
	}
	if got := c.Total(); got != 6 {
		t.Errorf("Total = %d, want 6", got)
	}
}

func TestCounterPrune(t *testing.T) {
	c := NewCounter()
	c.AddN("dead", 3)
	c.AddN("dead", -3)
	c.Add("live")
	c.Prune()
	if c.Len() != 1 {
		t.Errorf("Len after prune = %d, want 1", c.Len())
	}
	if c.Count("live") != 1 {
		t.Errorf("live count lost in prune")
	}
}

func TestTopKOrderAndTies(t *testing.T) {
	c := NewCounter()
	c.AddN("banking", 5)
	c.AddN("delivery", 3)
	c.AddN("telecom", 3)
	c.AddN("spam", 1)
	top := c.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK(3) returned %d entries", len(top))
	}
	if top[0].Key != "banking" {
		t.Errorf("top[0] = %q, want banking", top[0].Key)
	}
	// ties break lexicographically: delivery before telecom
	if top[1].Key != "delivery" || top[2].Key != "telecom" {
		t.Errorf("tie order = %q,%q; want delivery,telecom", top[1].Key, top[2].Key)
	}
}

func TestTopKZeroReturnsAll(t *testing.T) {
	c := NewCounter()
	for _, k := range []string{"a", "b", "c"} {
		c.Add(k)
	}
	if got := len(c.TopK(0)); got != 3 {
		t.Errorf("TopK(0) len = %d, want 3", got)
	}
	if got := len(c.TopK(100)); got != 3 {
		t.Errorf("TopK(100) len = %d, want 3", got)
	}
}

func TestCounterMerge(t *testing.T) {
	a := NewCounter()
	a.AddN("x", 2)
	b := NewCounter()
	b.AddN("x", 3)
	b.AddN("y", 1)
	a.Merge(b)
	if a.Count("x") != 5 || a.Count("y") != 1 || a.Total() != 6 {
		t.Errorf("merge result wrong: x=%d y=%d total=%d", a.Count("x"), a.Count("y"), a.Total())
	}
}

// Property: TopK output is sorted non-increasing by count, and shares sum to
// <= 1 with full TopK summing to ~1.
func TestTopKMonotoneProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		c := NewCounter()
		for _, k := range keys {
			c.Add(string(rune('a' + k%16)))
		}
		top := c.TopK(0)
		if !sort.SliceIsSorted(top, func(i, j int) bool {
			if top[i].Count != top[j].Count {
				return top[i].Count > top[j].Count
			}
			return top[i].Key < top[j].Key
		}) {
			return false
		}
		sum := 0
		for _, e := range top {
			sum += e.Count
		}
		return sum == c.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossTab(t *testing.T) {
	ct := NewCrossTab()
	ct.Add("bit.ly", "banking")
	ct.Add("bit.ly", "banking")
	ct.Add("bit.ly", "delivery")
	ct.Add("is.gd", "banking")
	if got := ct.Cell("bit.ly", "banking"); got != 2 {
		t.Errorf("cell = %d, want 2", got)
	}
	if got := ct.RowTotals().Count("bit.ly"); got != 3 {
		t.Errorf("row total = %d, want 3", got)
	}
	if got := ct.ColTotals().Count("banking"); got != 3 {
		t.Errorf("col total = %d, want 3", got)
	}
	if got := ct.Total(); got != 4 {
		t.Errorf("grand total = %d, want 4", got)
	}
	if got := ct.RowShare("bit.ly", "banking"); got != 2.0/3.0 {
		t.Errorf("row share = %v, want 2/3", got)
	}
	if got := ct.RowShare("missing", "banking"); got != 0 {
		t.Errorf("missing row share = %v, want 0", got)
	}
}

func TestEntryString(t *testing.T) {
	e := Entry{Key: "banking", Count: 45, Share: 0.451}
	if got := e.String(); got != "banking: 45 (45.1%)" {
		t.Errorf("Entry.String() = %q", got)
	}
}

// Property: merging counters is equivalent to counting the concatenation.
func TestMergeEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a, b, both := NewCounter(), NewCounter(), NewCounter()
		for i := 0; i < rng.Intn(200); i++ {
			k := string(rune('a' + rng.Intn(8)))
			a.Add(k)
			both.Add(k)
		}
		for i := 0; i < rng.Intn(200); i++ {
			k := string(rune('a' + rng.Intn(8)))
			b.Add(k)
			both.Add(k)
		}
		a.Merge(b)
		if a.Total() != both.Total() || a.Len() != both.Len() {
			t.Fatalf("merge mismatch: total %d vs %d", a.Total(), both.Total())
		}
		for _, k := range both.Keys() {
			if a.Count(k) != both.Count(k) {
				t.Fatalf("key %q: %d vs %d", k, a.Count(k), both.Count(k))
			}
		}
	}
}
