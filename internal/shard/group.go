package shard

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// Group routes curated records across N shard enrichers and merges their
// output deterministically. One batch flows through it as:
//
//	reports -> front.Curate -> ring-route by KeyOf -> N concurrent
//	EnrichAnnotate calls -> scatter results back into curation order
//
// Because curation is deterministic and every record returns to the index
// it was curated at, the merged Dataset is byte-identical for any shard
// count — and identical to the unsharded barrier pipeline. Downstream
// consumers (report projections, the union-find campaign view) therefore
// need no shard-aware merge of their own: they see the same record
// sequence they always did.
type Group struct {
	ring      *Ring
	front     *core.Pipeline
	mu        sync.RWMutex
	enrichers []Enricher
	remote    bool
	routed    []*telemetry.Counter
	batches   *telemetry.Counter
}

// NewGroup builds a router over the given enrichers. front curates each
// incoming batch (its services are never called — curation is offline);
// replicas tunes the ring's virtual-node count (0 = DefaultReplicas). The
// per-shard "shard.<i>.routed" counters land in reg.
func NewGroup(front *core.Pipeline, enrichers []Enricher, replicas int, reg *telemetry.Registry) (*Group, error) {
	if front == nil {
		return nil, fmt.Errorf("shard: group needs a front pipeline")
	}
	if len(enrichers) == 0 {
		return nil, fmt.Errorf("shard: group needs at least one enricher")
	}
	ring, err := NewRing(len(enrichers), replicas)
	if err != nil {
		return nil, err
	}
	g := &Group{
		ring:      ring,
		front:     front,
		enrichers: enrichers,
		routed:    make([]*telemetry.Counter, len(enrichers)),
		batches:   reg.Counter("shard.batches"),
	}
	for i := range g.routed {
		g.routed[i] = reg.Counter("shard." + strconv.Itoa(i) + ".routed")
	}
	return g, nil
}

// Shards returns the group's shard count.
func (g *Group) Shards() int { return g.ring.Shards() }

// SetEnrichers swaps the group's enrichers — the seam the multi-process
// mode uses to replace local stacks with remote workers after the worker
// processes have reported their URLs. The count must match the ring.
func (g *Group) SetEnrichers(enrichers []Enricher, remote bool) error {
	if len(enrichers) != g.ring.Shards() {
		return fmt.Errorf("shard: group has %d shards, got %d enrichers", g.ring.Shards(), len(enrichers))
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.enrichers = enrichers
	g.remote = remote
	return nil
}

// Run curates one batch, routes it, and returns the merged dataset. On a
// shard failure the lowest-indexed error is returned and the dataset must
// be discarded (the serve loop treats the round as failed, mirroring the
// unsharded pipeline's contract).
func (g *Group) Run(ctx context.Context, reports []forum.RawReport) (*core.Dataset, error) {
	g.mu.RLock()
	enrichers := g.enrichers
	g.mu.RUnlock()
	g.batches.Inc()

	sp := g.front.Telemetry().StartSpan("shard.route")
	ds := g.front.Curate(reports)
	n := len(enrichers)
	assign := make([][]int, n)
	for i := range ds.Records {
		s := g.ring.Shard(KeyOf(&ds.Records[i]))
		assign[s] = append(assign[s], i)
	}
	sp.End()

	var wg sync.WaitGroup
	errs := make([]error, n)
	for s := 0; s < n; s++ {
		if len(assign[s]) == 0 {
			continue
		}
		g.routed[s].Add(int64(len(assign[s])))
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			idxs := assign[s]
			subset := make([]core.Record, len(idxs))
			for j, idx := range idxs {
				subset[j] = ds.Records[idx]
			}
			out, err := enrichers[s].EnrichAnnotate(ctx, subset)
			if err != nil {
				errs[s] = fmt.Errorf("shard %d: %w", s, err)
				return
			}
			if len(out) != len(idxs) {
				errs[s] = fmt.Errorf("shard %d: returned %d records for %d routed", s, len(out), len(idxs))
				return
			}
			// Scatter back into the curation-order slots — the merge that
			// makes shard count invisible in the output.
			for j, idx := range idxs {
				ds.Records[idx] = out[j]
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// ShardInfo is one shard's row in GroupStats.
type ShardInfo struct {
	// Index is the shard's position on the ring.
	Index int `json:"index"`
	// Routed counts records routed to this shard since start.
	Routed int64 `json:"routed"`
	// Remote is set when the shard is a separate worker process.
	Remote bool `json:"remote,omitempty"`
	// Stack is the shard's tier scoreboard (nil when unavailable, e.g. an
	// unreachable remote worker).
	Stack *StackStats `json:"stack,omitempty"`
}

// GroupStats is the sharding scoreboard Study.ShardStats surfaces.
type GroupStats struct {
	// Shards is the configured shard count.
	Shards int `json:"shards"`
	// Batches counts routed batches since start.
	Batches int64 `json:"batches"`
	// PerShard has one row per shard, in index order.
	PerShard []ShardInfo `json:"per_shard"`
}

// Stats reports routing totals and, where available, per-shard tier
// scoreboards. Safe to call concurrently with Run.
func (g *Group) Stats() GroupStats {
	g.mu.RLock()
	enrichers := g.enrichers
	remote := g.remote
	g.mu.RUnlock()
	out := GroupStats{
		Shards:   g.ring.Shards(),
		Batches:  g.batches.Value(),
		PerShard: make([]ShardInfo, len(enrichers)),
	}
	for i, e := range enrichers {
		info := ShardInfo{Index: i, Routed: g.routed[i].Value(), Remote: remote}
		if sp, ok := e.(StatsProvider); ok {
			if st, ok := sp.Stats(); ok {
				info.Stack = &st
			}
		}
		out.PerShard[i] = info
	}
	return out
}

// Write renders a GroupStats snapshot as aligned text, one shard per row.
func Write(w io.Writer, st GroupStats) error {
	if _, err := fmt.Fprintf(w, "shards (n=%d, batches=%d)\n", st.Shards, st.Batches); err != nil {
		return err
	}
	for _, sh := range st.PerShard {
		mode := "local"
		if sh.Remote {
			mode = "remote"
		}
		line := fmt.Sprintf("  shard %-3d %-6s routed=%-8d", sh.Index, mode, sh.Routed)
		if sh.Stack != nil {
			line += fmt.Sprintf(" enriched=%-8d", sh.Stack.Enriched)
			var hits, misses int64
			for _, cs := range sh.Stack.Cache {
				hits += cs.Hits
				misses += cs.Misses
			}
			if hits+misses > 0 {
				line += fmt.Sprintf(" cache=%.0f%%", 100*float64(hits)/float64(hits+misses))
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
