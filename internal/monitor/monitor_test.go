package monitor

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/crawler"
)

// fixture boots a site server whose domains die on a schedule driven by a
// shared virtual clock.
func fixture(t *testing.T, start time.Time) (*crawler.SiteServer, *Monitor) {
	t.Helper()
	sites := crawler.NewSiteServer()
	srv := httptest.NewServer(sites.Handler())
	t.Cleanup(srv.Close)

	clock, advance := NewVirtualTime(start)
	sites.SetClock(clock)

	c := crawler.NewCrawler()
	router := &crawler.Router{SiteBase: srv.URL, ShortenerHosts: map[string]bool{}}
	c.Rewrite = router.Rewrite

	return sites, &Monitor{
		Crawler:  c,
		Interval: time.Hour,
		Clock:    clock,
		Advance:  advance,
	}
}

func TestMonitorMeasuresLifespans(t *testing.T) {
	start := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	sites, m := fixture(t, start)
	sites.Add(crawler.SiteBehavior{Domain: "short.top", Brand: "X", DownAt: start.Add(3 * time.Hour)})
	sites.Add(crawler.SiteBehavior{Domain: "long.top", Brand: "Y", DownAt: start.Add(30 * time.Hour)})
	sites.Add(crawler.SiteBehavior{Domain: "immortal.top", Brand: "Z"})

	targets, err := m.Run(context.Background(),
		[]string{"https://short.top/x", "https://long.top/x", "https://immortal.top/x"}, 48)
	if err != nil {
		t.Fatal(err)
	}
	short := targets["https://short.top/x"]
	if short.Status != StatusDead {
		t.Fatalf("short.top still alive: %+v", short)
	}
	// Died between hour 2 (last alive) and hour 3 (first dead poll).
	if got := short.Lifespan(); got < 2*time.Hour || got > 4*time.Hour {
		t.Errorf("short lifespan = %v", got)
	}
	long := targets["https://long.top/x"]
	if long.Status != StatusDead || long.Lifespan() < 28*time.Hour {
		t.Errorf("long target: %+v (lifespan %v)", long, long.Lifespan())
	}
	if targets["https://immortal.top/x"].Status != StatusAlive {
		t.Error("immortal target died")
	}
}

func TestMonitorNeverUpTargets(t *testing.T) {
	start := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	_, m := fixture(t, start)
	targets, err := m.Run(context.Background(), []string{"https://unregistered.top/x"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	tg := targets["https://unregistered.top/x"]
	if !tg.NeverUp || tg.Status != StatusDead {
		t.Errorf("target = %+v", tg)
	}
	if tg.Lifespan() != 0 {
		t.Errorf("never-up lifespan = %v", tg.Lifespan())
	}
}

func TestMonitorStopsEarlyWhenAllDead(t *testing.T) {
	start := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	sites, m := fixture(t, start)
	sites.Add(crawler.SiteBehavior{Domain: "quick.top", Brand: "X", DownAt: start.Add(time.Hour)})
	targets, err := m.Run(context.Background(), []string{"https://quick.top/x"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if polls := targets["https://quick.top/x"].Polls; polls > 5 {
		t.Errorf("polled %d times after death", polls)
	}
}

func TestMonitorContextCancel(t *testing.T) {
	start := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	sites, m := fixture(t, start)
	sites.Add(crawler.SiteBehavior{Domain: "x.top", Brand: "X"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Run(ctx, []string{"https://x.top/"}, 10); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}

func TestSummarize(t *testing.T) {
	start := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	sites, m := fixture(t, start)
	// The paper's claim: lifespans from minutes to a few days. Schedule a
	// spread and verify the summary brackets it.
	sites.Add(crawler.SiteBehavior{Domain: "m1.top", DownAt: start.Add(2 * time.Hour)})
	sites.Add(crawler.SiteBehavior{Domain: "m2.top", DownAt: start.Add(12 * time.Hour)})
	sites.Add(crawler.SiteBehavior{Domain: "m3.top", DownAt: start.Add(60 * time.Hour)})
	sites.Add(crawler.SiteBehavior{Domain: "alive.top"})

	targets, err := m.Run(context.Background(), []string{
		"https://m1.top/", "https://m2.top/", "https://m3.top/",
		"https://alive.top/", "https://ghost.top/",
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(targets)
	if sum.Targets != 5 || sum.Died != 3 || sum.StillAlive != 1 || sum.NeverUp != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Lifespans.Min < 1 || sum.Lifespans.Max > 61 {
		t.Errorf("lifespan hours = %+v", sum.Lifespans)
	}
	if sum.Lifespans.Median <= sum.Lifespans.Min || sum.Lifespans.Median >= sum.Lifespans.Max {
		t.Errorf("median out of bracket: %+v", sum.Lifespans)
	}
}
