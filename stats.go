package smishkit

import (
	"fmt"
	"io"
	"sort"

	"github.com/smishkit/smishkit/internal/batchmux"
	"github.com/smishkit/smishkit/internal/enrichcache"
	"github.com/smishkit/smishkit/internal/recordlog"
	"github.com/smishkit/smishkit/internal/resilience"
	"github.com/smishkit/smishkit/internal/shard"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// Stats bundles every observable surface of a Study in one snapshot,
// replacing the former per-surface accessors (Telemetry, CacheStats,
// BatchStats, ResilienceStats). Optional layers the study was built
// without are nil; Service is nil unless Serve has run.
type Stats struct {
	// Telemetry is the full metrics snapshot: stage spans, counters,
	// gauges, and latency histograms.
	Telemetry Telemetry
	// Cache is the enrichment cache scoreboard (nil without Options.Cache).
	Cache CacheStats
	// Batch is the batching-tier scoreboard (nil without Options.Batch).
	Batch BatchStats
	// Resilience is the circuit-breaker scoreboard (nil without
	// Options.Resilience).
	Resilience ResilienceStats
	// Service is the daemon scoreboard: rounds, committed reports,
	// projection backlog, and per-forum cursors (nil until Serve runs).
	Service *ServiceStats
	// Durability is the record log scoreboard: appends, replayed records,
	// dedup hits, snapshots, compactions, and damage counters (nil without
	// Options.Durability).
	Durability *DurabilityStats
	// Shards is the sharding scoreboard: routed totals and per-shard
	// cache/batch/breaker stats (nil without Options.Shards). When present,
	// Cache/Batch/Resilience above are nil — the tiers live inside the
	// shards.
	Shards *ShardStats
}

// Stats snapshots every surface at once. Safe to call concurrently with
// Run or Serve, and after Close.
func (s *Study) Stats() Stats {
	st := Stats{Telemetry: s.Pipe.Telemetry().Snapshot()}
	if s.cache != nil {
		st.Cache = s.cache.Stats()
	}
	if s.batch != nil {
		st.Batch = s.batch.Stats()
	}
	if s.breakers != nil {
		st.Resilience = s.breakers.Stats()
	}
	if svc := s.svc; svc != nil {
		sv := svc.stats()
		st.Service = &sv
	}
	if s.rlog != nil {
		ds := s.rlog.Stats()
		st.Durability = &ds
	}
	st.Shards = s.ShardStats()
	return st
}

// StatsSection selects one part of a Stats snapshot for WriteStats.
type StatsSection string

// The sections WriteStats understands.
const (
	SectionTelemetry  StatsSection = "telemetry"
	SectionCache      StatsSection = "cache"
	SectionBatch      StatsSection = "batch"
	SectionResilience StatsSection = "resilience"
	SectionService    StatsSection = "service"
	SectionDurability StatsSection = "durability"
	SectionShards     StatsSection = "shards"
)

// allSections is the default render order.
var allSections = []StatsSection{
	SectionTelemetry, SectionCache, SectionBatch, SectionResilience, SectionShards, SectionService, SectionDurability,
}

// WriteStats renders the selected sections of a Stats snapshot as
// human-readable text, in the order given. With no sections it renders
// every section that carries data (absent layers are skipped silently; an
// explicitly requested absent section renders an "absent" note instead).
// An unknown section name is an error.
func WriteStats(w io.Writer, stats Stats, sections ...StatsSection) error {
	explicit := len(sections) > 0
	if !explicit {
		sections = allSections
	}
	for _, sec := range sections {
		switch sec {
		case SectionTelemetry:
			if err := telemetry.Write(w, stats.Telemetry); err != nil {
				return err
			}
		case SectionCache:
			if stats.Cache == nil {
				if explicit {
					fmt.Fprintln(w, "cache: absent (study built without Options.Cache)")
				}
				continue
			}
			if err := enrichcache.Write(w, stats.Cache); err != nil {
				return err
			}
		case SectionBatch:
			if stats.Batch == nil {
				if explicit {
					fmt.Fprintln(w, "batch: absent (study built without Options.Batch)")
				}
				continue
			}
			if err := batchmux.Write(w, stats.Batch); err != nil {
				return err
			}
		case SectionResilience:
			if stats.Resilience == nil {
				if explicit {
					fmt.Fprintln(w, "resilience: absent (study built without Options.Resilience)")
				}
				continue
			}
			if err := resilience.Write(w, stats.Resilience); err != nil {
				return err
			}
		case SectionService:
			if stats.Service == nil {
				if explicit {
					fmt.Fprintln(w, "service: absent (Serve has not run)")
				}
				continue
			}
			if err := writeServiceStats(w, *stats.Service); err != nil {
				return err
			}
		case SectionShards:
			if stats.Shards == nil {
				if explicit {
					fmt.Fprintln(w, "shards: absent (study built without Options.Shards)")
				}
				continue
			}
			if err := shard.Write(w, *stats.Shards); err != nil {
				return err
			}
		case SectionDurability:
			if stats.Durability == nil {
				if explicit {
					fmt.Fprintln(w, "durability: absent (study built without Options.Durability)")
				}
				continue
			}
			if err := recordlog.Write(w, *stats.Durability); err != nil {
				return err
			}
		default:
			return fmt.Errorf("smishkit: unknown stats section %q", sec)
		}
	}
	return nil
}

// writeServiceStats renders the daemon scoreboard as aligned text.
func writeServiceStats(w io.Writer, st ServiceStats) error {
	if _, err := fmt.Fprintf(w, "service (schema v%d)\n  rounds=%d reports=%d records=%d pending=%d backlog=%.1fs\n",
		st.SchemaVersion, st.Rounds, st.Reports, st.Records, st.PendingBatches, st.BacklogSeconds); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  throughput: reports_1m=%d injected=%d round p50=%.1fms p95=%.1fms p99=%.1fms (n=%d)\n",
		st.Reports1mTotal, st.InjectedPosts, st.RoundMS.P50, st.RoundMS.P95, st.RoundMS.P99, st.RoundMS.Count); err != nil {
		return err
	}
	if st.StatusURL != "" {
		if _, err := fmt.Fprintf(w, "  status: %s/status\n", st.StatusURL); err != nil {
			return err
		}
	}
	for _, src := range sourcesInOrder(st.Cursors) {
		cur := st.Cursors[src]
		if _, err := fmt.Fprintf(w, "  cursor %-12s offset=%-6d last=%-12q tokens=%d updated=%s\n",
			src, cur.Offset, cur.LastID, len(cur.Tokens), cur.Updated.Format("15:04:05")); err != nil {
			return err
		}
	}
	return nil
}

func sourcesInOrder(m map[string]Cursor) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
