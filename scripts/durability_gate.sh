#!/usr/bin/env bash
# durability_gate.sh — CI entry point for the SIGKILL/restart durability gate.
#
#   scripts/durability_gate.sh [OUT_DIR]
#
# Boots smishctl -serve on a fresh -data-dir, injects a wave, SIGKILLs the
# daemon, restarts it over the same directory, and fails unless the
# restarted /query/summary is identical to the pre-kill snapshot with zero
# backend enrichment calls. The orchestration lives in scripts/durgate
# (plain Go, no curl/jq needed); everything it produces — the data
# directory and both daemon logs — lands under OUT_DIR for artifact upload
# on failure.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-bench/durgate}"
exec go run ./scripts/durgate -out "$OUT"
