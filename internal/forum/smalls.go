package forum

import (
	"fmt"
	"html"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/checkpoint"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/netutil"
)

func unixTime(sec float64) time.Time { return time.Unix(int64(sec), 0).UTC() }

// --- Smishtank (§3.1.5): JSON submissions API + screenshots ---

// SmishtankServer serves the crowdsourced submission list. Posts may be
// appended while the server is live; the offset-paginated API stays
// consistent because appends only extend the tail.
type SmishtankServer struct {
	mu    sync.RWMutex
	posts []post
}

// NewSmishtankServer seeds the server.
func NewSmishtankServer(posts []post) *SmishtankServer {
	sorted := make([]post, len(posts))
	copy(sorted, posts)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].CreatedAt.Before(sorted[j].CreatedAt) })
	return &SmishtankServer{posts: sorted}
}

// Append publishes new submissions at the tail. Batches must be
// chronologically at-or-after the existing posts.
func (s *SmishtankServer) Append(posts []post) {
	batch := make([]post, len(posts))
	copy(batch, posts)
	sort.SliceStable(batch, func(i, j int) bool { return batch[i].CreatedAt.Before(batch[j].CreatedAt) })
	s.mu.Lock()
	s.posts = append(s.posts, batch...)
	s.mu.Unlock()
}

type smishtankSubmission struct {
	ID         string `json:"id"`
	Submitted  string `json:"submitted_at"`
	Sender     string `json:"sender"`
	Text       string `json:"text"`
	Timestamp  string `json:"sms_timestamp,omitempty"`
	Screenshot string `json:"screenshot,omitempty"` // path
}

type smishtankPage struct {
	Submissions []smishtankSubmission `json:"submissions"`
	Total       int                   `json:"total"`
	Offset      int                   `json:"offset"`
}

// Handler returns the API routes.
func (s *SmishtankServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/submissions", func(w http.ResponseWriter, r *http.Request) {
		offset, _ := strconv.Atoi(r.URL.Query().Get("offset"))
		limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
		if limit <= 0 || limit > 200 {
			limit = 50
		}
		s.mu.RLock()
		defer s.mu.RUnlock()
		if offset < 0 || offset > len(s.posts) {
			offset = len(s.posts)
		}
		page := smishtankPage{Total: len(s.posts), Offset: offset, Submissions: []smishtankSubmission{}}
		for i := offset; i < len(s.posts) && len(page.Submissions) < limit; i++ {
			p := s.posts[i]
			sub := smishtankSubmission{
				ID:        p.ID,
				Submitted: p.CreatedAt.Format(time.RFC3339),
				Sender:    p.SenderID,
				Text:      p.SMSText,
				Timestamp: p.Timestamp,
			}
			if len(p.Attachment) > 0 {
				sub.Screenshot = "/screenshots/" + p.ID
			}
			page.Submissions = append(page.Submissions, sub)
		}
		netutil.WriteJSON(w, http.StatusOK, page)
	})
	mux.HandleFunc("GET /screenshots/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s.mu.RLock()
		defer s.mu.RUnlock()
		for _, p := range s.posts {
			if p.ID == id && len(p.Attachment) > 0 {
				_, _ = w.Write(p.Attachment)
				return
			}
		}
		http.NotFound(w, r)
	})
	return mux
}

// SmishtankCollector pages through the submission API.
type SmishtankCollector struct {
	API netutil.Client
}

// NewSmishtankCollector builds a collector for the API at baseURL.
func NewSmishtankCollector(baseURL string) *SmishtankCollector {
	return &SmishtankCollector{API: netutil.Client{BaseURL: baseURL}}
}

// Name implements Collector.
func (c *SmishtankCollector) Name() corpus.Forum { return corpus.ForumSmishtank }

// Collect implements Collector: a full-history sync from a zero cursor.
func (c *SmishtankCollector) Collect(ctx ctxType, sink func(RawReport) error) error {
	_, err := c.CollectSince(ctx, checkpoint.Cursor{}, sink)
	return err
}

// CollectSince implements IncrementalCollector: Cursor.Offset counts the
// submissions already consumed, which is exactly the API's own offset
// parameter — the submission list is append-only.
func (c *SmishtankCollector) CollectSince(ctx ctxType, cur checkpoint.Cursor, sink func(RawReport) error) (checkpoint.Cursor, error) {
	next := cur.Clone()
	next.Source = "smishtank"
	offset := cur.Offset
	for {
		var page smishtankPage
		if err := c.API.GetJSON(ctx, fmt.Sprintf("/api/submissions?offset=%d&limit=100", offset), &page); err != nil {
			return cur, fmt.Errorf("forum: smishtank page %d: %w", offset, err)
		}
		for _, sub := range page.Submissions {
			posted, _ := time.Parse(time.RFC3339, sub.Submitted)
			rep := RawReport{
				Forum:     corpus.ForumSmishtank,
				PostID:    sub.ID,
				PostedAt:  posted,
				SMSText:   sub.Text,
				SenderID:  sub.Sender,
				Timestamp: sub.Timestamp,
			}
			if sub.Screenshot != "" {
				data, err := fetchBytes(ctx, &c.API, sub.Screenshot)
				if err != nil {
					return cur, fmt.Errorf("forum: smishtank screenshot %s: %w", sub.ID, err)
				}
				rep.Attachment = data
			}
			if err := sink(rep); err != nil {
				return cur, err
			}
		}
		offset += len(page.Submissions)
		if len(page.Submissions) == 0 || offset >= page.Total {
			break
		}
	}
	next.Offset = offset
	next.Updated = time.Now().UTC()
	return next, nil
}

// --- Smishing.eu (§3.1.3): HTML report tables, scraped weekly ---

// smishingEUPageSize is the server's fixed rows-per-page; the collector
// relies on it to convert its consumed-row cursor into a page + skip.
const smishingEUPageSize = 25

// SmishingEUServer renders paginated HTML tables of user reports. Posts
// may be appended while the server is live; rows only ever extend the last
// page, so earlier page contents are stable.
type SmishingEUServer struct {
	mu       sync.RWMutex
	posts    []post
	pageSize int
}

// NewSmishingEUServer seeds the server.
func NewSmishingEUServer(posts []post) *SmishingEUServer {
	sorted := make([]post, len(posts))
	copy(sorted, posts)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].CreatedAt.Before(sorted[j].CreatedAt) })
	return &SmishingEUServer{posts: sorted, pageSize: smishingEUPageSize}
}

// Append publishes new report rows at the tail. Batches must be
// chronologically at-or-after the existing posts.
func (s *SmishingEUServer) Append(posts []post) {
	batch := make([]post, len(posts))
	copy(batch, posts)
	sort.SliceStable(batch, func(i, j int) bool { return batch[i].CreatedAt.Before(batch[j].CreatedAt) })
	s.mu.Lock()
	s.posts = append(s.posts, batch...)
	s.mu.Unlock()
}

// Handler returns the web routes.
func (s *SmishingEUServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /reports", func(w http.ResponseWriter, r *http.Request) {
		page, _ := strconv.Atoi(r.URL.Query().Get("page"))
		if page < 1 {
			page = 1
		}
		s.mu.RLock()
		defer s.mu.RUnlock()
		start := (page - 1) * s.pageSize
		end := start + s.pageSize
		if start > len(s.posts) {
			start = len(s.posts)
		}
		if end > len(s.posts) {
			end = len(s.posts)
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, "<html><body><h1>Reported smishing</h1><table id=\"reports\">\n")
		fmt.Fprint(w, "<tr><th>Date</th><th>Country</th><th>Sender</th><th>Brand</th><th>Message</th></tr>\n")
		for _, p := range s.posts[start:end] {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
				html.EscapeString(p.Timestamp), html.EscapeString(p.Country),
				html.EscapeString(p.SenderID), html.EscapeString(p.Brand),
				html.EscapeString(p.SMSText))
		}
		fmt.Fprint(w, "</table>")
		if end < len(s.posts) {
			fmt.Fprintf(w, `<a href="/reports?page=%d" rel="next">older</a>`, page+1)
		}
		fmt.Fprint(w, "</body></html>")
	})
	return mux
}

// rowRe captures one table row of the report page.
var rowRe = regexp.MustCompile(`<tr><td>(.*?)</td><td>(.*?)</td><td>(.*?)</td><td>(.*?)</td><td>(.*?)</td></tr>`)

// SmishingEUCollector scrapes the HTML tables page by page — the paper's
// custom weekly scraper (§3.1.3).
type SmishingEUCollector struct {
	API netutil.Client
}

// NewSmishingEUCollector builds a scraper for the site at baseURL.
func NewSmishingEUCollector(baseURL string) *SmishingEUCollector {
	return &SmishingEUCollector{API: netutil.Client{BaseURL: baseURL}}
}

// Name implements Collector.
func (c *SmishingEUCollector) Name() corpus.Forum { return corpus.ForumSmishingEU }

// Collect implements Collector: a full-history sync from a zero cursor.
func (c *SmishingEUCollector) Collect(ctx ctxType, sink func(RawReport) error) error {
	_, err := c.CollectSince(ctx, checkpoint.Cursor{}, sink)
	return err
}

// CollectSince implements IncrementalCollector: Cursor.Offset counts table
// rows consumed across all pages. Resume lands on page offset/25+1 and
// skips the rows already scraped there (new rows only ever extend the last
// page). PostIDs are derived from the global row position, so a row keeps
// the same ID whether it was scraped in one sweep or across many.
func (c *SmishingEUCollector) CollectSince(ctx ctxType, cur checkpoint.Cursor, sink func(RawReport) error) (checkpoint.Cursor, error) {
	next := cur.Clone()
	next.Source = "smishing.eu"
	offset := cur.Offset
	for {
		page := offset/smishingEUPageSize + 1
		skip := offset % smishingEUPageSize
		body, err := fetchBytes(ctx, &c.API, fmt.Sprintf("/reports?page=%d", page))
		if err != nil {
			return cur, fmt.Errorf("forum: smishing.eu page %d: %w", page, err)
		}
		doc := string(body)
		rows := rowRe.FindAllStringSubmatch(doc, -1)
		for i, row := range rows {
			if i < skip {
				continue
			}
			date, country, sender, brand, msg := row[1], row[2], row[3], row[4], row[5]
			if date == "Date" || strings.Contains(row[0], "<th>") {
				continue
			}
			rep := RawReport{
				Forum:     corpus.ForumSmishingEU,
				PostID:    fmt.Sprintf("smishing.eu-p%d-r%d", page, i+1),
				SMSText:   html.UnescapeString(msg),
				SenderID:  html.UnescapeString(sender),
				Timestamp: date,
				Brand:     html.UnescapeString(brand),
				Country:   country,
			}
			if t, err := time.Parse("2006-01-02", date); err == nil {
				rep.PostedAt = t
			}
			if err := sink(rep); err != nil {
				return cur, err
			}
			offset++
		}
		if !strings.Contains(doc, `rel="next"`) {
			break
		}
	}
	next.Offset = offset
	next.Updated = time.Now().UTC()
	return next, nil
}

// --- Pastebin (§3.1.4): analyst pastes, one smish per line ---

// PastebinServer serves an archive listing and raw pastes. Each paste packs
// several reports as "sender | date | message" lines, the format of the
// abuseipdb-mirroring analyst the paper found. Pastes are immutable once
// published: Append always opens new pastes, never extends existing ones,
// so a consumed paste ID is a safe resume point.
type PastebinServer struct {
	mu     sync.RWMutex
	pastes map[string][]post
	order  []string
	seq    int // pastes created so far, drives ID allocation
}

// NewPastebinServer groups posts into pastes of up to 10 reports.
func NewPastebinServer(posts []post) *PastebinServer {
	s := &PastebinServer{pastes: make(map[string][]post)}
	s.Append(posts)
	return s
}

// Append publishes new posts as fresh pastes of up to 10 reports each.
func (s *PastebinServer) Append(posts []post) {
	sorted := make([]post, len(posts))
	copy(sorted, posts)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].CreatedAt.Before(sorted[j].CreatedAt) })
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < len(sorted); i += 10 {
		end := i + 10
		if end > len(sorted) {
			end = len(sorted)
		}
		s.seq++
		id := fmt.Sprintf("p%06x", s.seq)
		s.pastes[id] = sorted[i:end]
		s.order = append(s.order, id)
	}
}

// Handler returns the web routes.
func (s *PastebinServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /archive", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.mu.RLock()
		defer s.mu.RUnlock()
		for _, id := range s.order {
			fmt.Fprintln(w, id)
		}
	})
	mux.HandleFunc("GET /raw/{id}", func(w http.ResponseWriter, r *http.Request) {
		s.mu.RLock()
		defer s.mu.RUnlock()
		posts, ok := s.pastes[r.PathValue("id")]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, p := range posts {
			msg := strings.ReplaceAll(p.SMSText, "|", "/")
			fmt.Fprintf(w, "%s | %s | %s\n", p.SenderID, p.Timestamp, msg)
		}
	})
	return mux
}

// PastebinCollector lists the archive and parses each paste.
type PastebinCollector struct {
	API netutil.Client
}

// NewPastebinCollector builds a collector for the site at baseURL.
func NewPastebinCollector(baseURL string) *PastebinCollector {
	return &PastebinCollector{API: netutil.Client{BaseURL: baseURL}}
}

// Name implements Collector.
func (c *PastebinCollector) Name() corpus.Forum { return corpus.ForumPastebin }

// Collect implements Collector: a full-history sync from a zero cursor.
func (c *PastebinCollector) Collect(ctx ctxType, sink func(RawReport) error) error {
	_, err := c.CollectSince(ctx, checkpoint.Cursor{}, sink)
	return err
}

// CollectSince implements IncrementalCollector: Cursor.LastID is the last
// fully-consumed paste in archive order; the archive is append-only and
// pastes are immutable, so everything after it is new.
func (c *PastebinCollector) CollectSince(ctx ctxType, cur checkpoint.Cursor, sink func(RawReport) error) (checkpoint.Cursor, error) {
	next := cur.Clone()
	next.Source = "pastebin"
	index, err := fetchBytes(ctx, &c.API, "/archive")
	if err != nil {
		return cur, fmt.Errorf("forum: pastebin archive: %w", err)
	}
	ids := strings.Fields(string(index))
	start := 0
	if cur.LastID != "" {
		found := false
		for i, id := range ids {
			if id == cur.LastID {
				start = i + 1
				found = true
				break
			}
		}
		// LastID absent from the archive (e.g. the site regrouped old pastes):
		// paste IDs are sequential and zero-padded, so skip everything issued
		// at or before the cursor rather than rescanning from the top.
		if !found {
			for start < len(ids) && ids[start] <= cur.LastID {
				start++
			}
		}
	}
	last := cur.LastID
	for _, id := range ids[start:] {
		body, err := fetchBytes(ctx, &c.API, "/raw/"+id)
		if err != nil {
			return cur, fmt.Errorf("forum: pastebin paste %s: %w", id, err)
		}
		for n, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
			parts := strings.SplitN(line, " | ", 3)
			if len(parts) != 3 {
				continue // truncated line: skip, don't abort the paste
			}
			rep := RawReport{
				Forum:     corpus.ForumPastebin,
				PostID:    fmt.Sprintf("%s-%d", id, n),
				SMSText:   parts[2],
				SenderID:  parts[0],
				Timestamp: parts[1],
			}
			if t, err := time.Parse("2006-01-02", parts[1]); err == nil {
				rep.PostedAt = t
			}
			if err := sink(rep); err != nil {
				return cur, err
			}
		}
		last = id
	}
	next.LastID = last
	next.Updated = time.Now().UTC()
	return next, nil
}
