// Command smishctl runs the full smishing measurement pipeline against a
// simulated world and prints the paper's tables and figures.
//
// Usage:
//
//	smishctl [-seed N] [-messages N] [-workers N] [-step-workers N] [-stream]
//	         [-extractor structured|vision|naive] [-telemetry] [-cache]
//	         [-cache-stats] [-batch] [-batch-stats] [-chaos RATE]
//	         [-shards N] [-shard-procs] [-shard-failover]
//	         [-shard-probe-interval D] [-shard-restart-max N]
//	         [-serve] [-poll-interval D] [-serve-rounds N] [-checkpoint-dir DIR]
//	         [-data-dir DIR] [-status-file FILE] [-cpuprofile FILE]
//	         [-memprofile FILE]
//
// -shards N partitions enrichment by stable key (registrable domain,
// falling back to sender ID) across N shard instances, each owning its own
// cache, batchmux windows, and circuit breakers; output is record-identical
// for any N. -shard-procs additionally runs each shard as a separate OS
// process fed over localhost (spawned from this same binary's hidden
// -shard-worker mode). -shard-failover turns on the lifecycle layer:
// shard health is probed on -shard-probe-interval, a failed shard's
// routed records are re-dispatched to survivors (output stays
// record-identical), and with -shard-procs a dead worker process is
// restarted with capped exponential backoff up to -shard-restart-max
// times.
//
// With -serve, smishctl runs as a long-lived daemon: it polls the forums
// on -poll-interval, feeds new reports through the streaming pipeline
// (implied by -serve), and keeps the report tables current; Ctrl-C drains
// the in-flight round and prints the final report. -checkpoint-dir makes
// the collection cursors survive restarts; -data-dir makes the enriched
// dataset itself survive (cursors + record log + inject journal under one
// directory), so a killed daemon restarts without re-enriching history.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"github.com/smishkit/smishkit"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smishctl: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run holds the whole invocation so deferred cleanup (profiles, study
// teardown) executes on every exit path; log.Fatal in main would skip it.
func run() error {
	seed := flag.Int64("seed", 1, "world generation seed")
	messages := flag.Int("messages", 4000, "synthetic corpus size")
	workers := flag.Int("workers", 8, "record-level enrichment fan-out width")
	stepWorkers := flag.Int("step-workers", 4, "intra-record enrichment parallelism: independent service families run concurrently per record (1 = sequential)")
	stream := flag.Bool("stream", false, "overlap curation, enrichment, and annotation through bounded channels (record order becomes completion order)")
	extractor := flag.String("extractor", "structured", "screenshot extractor: structured|vision|naive")
	telemetry := flag.Bool("telemetry", false, "print per-stage spans and per-service client metrics after the report")
	cache := flag.Bool("cache", true, "coalesce and cache enrichment lookups (singleflight + TTL/LRU + negative caching)")
	cacheStats := flag.Bool("cache-stats", false, "print per-service cache hit/miss/coalesced counts after the report")
	batch := flag.Bool("batch", false, "coalesce cache misses into windowed bulk requests (HLR, passive DNS, URL scans)")
	batchStats := flag.Bool("batch-stats", false, "print per-service batching flush/coalesced counts after the report")
	chaos := flag.Float64("chaos", 0, "inject faults into this fraction of service calls (0 disables; seeded by -seed) and enable circuit breakers")
	serve := flag.Bool("serve", false, "run as a long-lived daemon: poll the forums incrementally and keep the report projection current (implies -stream)")
	pollInterval := flag.Duration("poll-interval", 2*time.Second, "idle time between daemon collection rounds (with -serve)")
	serveRounds := flag.Int("serve-rounds", 0, "stop the daemon after N rounds (0 = run until interrupted; with -serve)")
	checkpointDir := flag.String("checkpoint-dir", "", "persist collection cursors as JSON files under this directory so a restarted daemon resumes where it left off (with -serve)")
	dataDir := flag.String("data-dir", "", "persist the full serving state under this directory: enriched records in a snapshot+compaction record log ('records/'), injected-wave journal, and collection cursors ('checkpoints/', unless -checkpoint-dir overrides) — a restarted daemon replays instead of re-enriching (with -serve)")
	statusFile := flag.String("status-file", "", "write the daemon's status URL to this file once it is listening, for script orchestration (with -serve)")
	liveWaves := flag.Int("live-waves", 3, "hold back this many fixture waves and release one per round, so the daemon sees reports arrive over time (with -serve)")
	shards := flag.Int("shards", 0, "partition enrichment across N key-sharded instances, each owning its own cache/batch/breaker tiers (0 = unsharded; output is record-identical for any N)")
	shardProcs := flag.Bool("shard-procs", false, "run each shard as a separate OS process fed over localhost (requires -shards)")
	shardFailover := flag.Bool("shard-failover", false, "probe shard health and re-dispatch a failed shard's records to survivors; with -shard-procs, also restart dead worker processes (requires -shards)")
	shardProbeInterval := flag.Duration("shard-probe-interval", 2*time.Second, "health-probe cadence (with -shard-failover)")
	shardRestartMax := flag.Int("shard-restart-max", 5, "restart budget per worker process (with -shard-failover -shard-procs)")
	shardWorker := flag.Bool("shard-worker", false, "internal: run as one shard worker process — spec JSON on stdin, base URL on stdout, serve until SIGTERM")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline (batch mode only)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (post-run) to this file")
	flag.Parse()
	if *shardWorker {
		// Worker mode is the whole process: no world, no report — just one
		// shard's stack behind a localhost listener, for a parent smishctl
		// running with -shard-procs.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return smishkit.RunShardWorker(ctx, os.Stdin, os.Stdout)
	}
	if *chaos < 0 || *chaos > 1 {
		return fmt.Errorf("-chaos %v out of range [0, 1]", *chaos)
	}
	if *shards < 0 {
		return fmt.Errorf("-shards %d must not be negative", *shards)
	}
	if *shardProcs && *shards == 0 {
		return fmt.Errorf("-shard-procs requires -shards")
	}
	if *shardFailover && *shards == 0 {
		return fmt.Errorf("-shard-failover requires -shards")
	}
	if *shardProcs && *chaos > 0 {
		return fmt.Errorf("-shard-procs is incompatible with -chaos: fault injection is seeded per process, so worker-side chaos would break the sharded/unsharded output identity")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	opts := smishkit.Options{Seed: *seed, Messages: *messages}
	if *cache {
		opts.Cache = &smishkit.CacheConfig{ServeStale: true}
	}
	if *batch {
		opts.Batch = &smishkit.BatchConfig{}
	}
	if *chaos > 0 {
		// Split the rate across fault kinds: mostly transport errors and
		// 5xx, a sliver of rate limits and hangs, plus latency spikes.
		opts.Faults = &smishkit.FaultConfig{
			Seed: *seed,
			Default: smishkit.ServiceFaults{
				ErrorRate: *chaos * 0.5,
				Rate5xx:   *chaos * 0.3,
				Rate429:   *chaos * 0.15,
				HangRate:  *chaos * 0.05,
				SlowRate:  *chaos,
				Latency:   2 * time.Millisecond,
			},
		}
		opts.Resilience = &smishkit.ResilienceConfig{
			CallTimeout:  2 * time.Second,
			RecordBudget: 30 * time.Second,
		}
	}
	opts.Pipeline.EnrichWorkers = *workers
	opts.Pipeline.StepWorkers = *stepWorkers
	opts.Pipeline.Streaming = *stream
	if *shards > 0 {
		sc := &smishkit.ShardConfig{Shards: *shards, Failover: *shardFailover}
		if *shardFailover {
			sc.ProbeInterval = *shardProbeInterval
		}
		opts.Shards = sc
	}
	if *serve {
		// Service mode feeds every round through the streaming pipeline.
		opts.Pipeline.Streaming = true
		opts.Service = &smishkit.ServiceConfig{
			PollInterval: *pollInterval,
			MaxRounds:    *serveRounds,
			LiveWaves:    *liveWaves,
			// OnReady fires once the status server is listening — no
			// polling needed to learn the URL.
			OnReady: func(statusURL string) {
				log.Printf("status: %s/status (telemetry at /debug/telemetry)", statusURL)
				if *statusFile != "" {
					if err := os.WriteFile(*statusFile, []byte(statusURL), 0o644); err != nil {
						log.Printf("-status-file: %v", err)
					}
				}
			},
		}
		if *checkpointDir != "" {
			store, err := smishkit.NewFileCheckpoints(*checkpointDir)
			if err != nil {
				return fmt.Errorf("-checkpoint-dir: %w", err)
			}
			opts.Service.Checkpoints = store
		}
		if *dataDir != "" {
			opts.Durability = &smishkit.DurabilityConfig{Dir: filepath.Join(*dataDir, "records")}
			// Cursors without the record log (or the reverse) would resume
			// collection but lose the dataset (or the reverse), so -data-dir
			// provides both; an explicit -checkpoint-dir still wins.
			if *checkpointDir == "" {
				store, err := smishkit.NewFileCheckpoints(filepath.Join(*dataDir, "checkpoints"))
				if err != nil {
					return fmt.Errorf("-data-dir: %w", err)
				}
				opts.Service.Checkpoints = store
			}
		}
	}
	if *dataDir != "" && !*serve {
		return fmt.Errorf("-data-dir requires -serve: the record log is written by the daemon at commit time")
	}
	switch *extractor {
	case "structured":
		opts.Pipeline.Extractor = smishkit.ExtractorStructuredVision
	case "vision":
		opts.Pipeline.Extractor = smishkit.ExtractorVisionOCR
	case "naive":
		opts.Pipeline.Extractor = smishkit.ExtractorNaiveOCR
	default:
		return fmt.Errorf("unknown extractor %q", *extractor)
	}

	start := time.Now()
	if *serve {
		opts.Service.OnRound = func(info smishkit.RoundInfo) {
			if info.Err != nil {
				log.Printf("round %d: %v", info.Round, info.Err)
				return
			}
			log.Printf("round %d: +%d reports, %d records projected", info.Round, info.NewReports, info.Records)
		}
	}
	study, err := smishkit.NewStudy(opts)
	if err != nil {
		return err
	}
	defer study.Close()
	log.Printf("world: %d messages, %d domains, %d numbers, %d short links",
		len(study.World.Messages), len(study.World.Domains),
		len(study.World.Numbers), len(study.World.Links))
	if *shardProcs {
		// Workers dial the study's simulation, so they start after it: spawn
		// this same binary N times in -shard-worker mode, read each worker's
		// URL off its stdout, and swap the study's local shards for remote
		// ones. Workers are torn down (SIGTERM, then reaped) on every exit
		// path; with -shard-failover a supervisor also restarts any that die
		// mid-run.
		stop, err := startShardWorkers(study, *shardFailover, *shardRestartMax)
		if stop != nil {
			defer stop()
		}
		if err != nil {
			return err
		}
		log.Printf("shards: %d worker processes connected", *shards)
	}

	var ds *smishkit.Dataset
	if *serve {
		// Daemon mode: run until -serve-rounds completes or Ctrl-C; the
		// shutdown drains the in-flight round before reporting.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		ds, err = study.Serve(ctx)
	} else {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		ds, err = study.Run(ctx)
	}
	if err != nil {
		return err
	}
	mode := "barrier"
	if *stream {
		mode = "streaming"
	}
	if *serve {
		mode = "service"
	}
	log.Printf("pipeline (%s, %d×%d workers): %d records in %v (decoys rejected: %d)",
		mode, *workers, *stepWorkers, len(ds.Records),
		time.Since(start).Round(time.Millisecond), ds.DecoysRejected)
	if *chaos > 0 {
		degraded := 0
		for _, r := range ds.Records {
			if r.Degraded() {
				degraded++
			}
		}
		log.Printf("chaos: %d of %d records degraded", degraded, len(ds.Records))
	}

	if err := smishkit.WriteReport(os.Stdout, ds); err != nil {
		return err
	}
	fmt.Println()

	// One snapshot serves every requested section (the former per-surface
	// accessors still exist but are deprecated).
	stats := study.Stats()
	var sections []smishkit.StatsSection
	if *telemetry {
		sections = append(sections, smishkit.SectionTelemetry)
		log.Printf("live snapshot: %s/debug/telemetry", study.Sim.DebugURL)
	}
	if *cacheStats {
		sections = append(sections, smishkit.SectionCache)
	}
	if *batchStats {
		sections = append(sections, smishkit.SectionBatch)
	}
	if *chaos > 0 {
		sections = append(sections, smishkit.SectionResilience)
	}
	if *shards > 0 {
		sections = append(sections, smishkit.SectionShards)
	}
	if *serve {
		sections = append(sections, smishkit.SectionService)
	}
	if *dataDir != "" {
		sections = append(sections, smishkit.SectionDurability)
	}
	if len(sections) > 0 {
		if err := smishkit.WriteStats(os.Stdout, stats, sections...); err != nil {
			return err
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // settle allocations so the heap profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
	}
	return nil
}

// startShardWorkers brings up one worker process per shard (this binary
// with -shard-worker) under a supervisor, connects the study to them, and
// returns a teardown function. With failover on, the supervisor also
// restarts any worker that dies mid-run (capped exponential backoff, up to
// maxRestarts attempts each) and re-registers the fresh URL with the
// study's routing group; with it off, workers are launched and reaped but
// never restarted — the original -shard-procs contract.
func startShardWorkers(study *smishkit.Study, failover bool, maxRestarts int) (stop func(), err error) {
	starter, err := processStarter(study)
	if err != nil {
		return nil, fmt.Errorf("-shard-procs: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sup, err := study.StartShardSupervisor(ctx, starter, smishkit.ShardSupervisorConfig{
		MaxRestarts: maxRestarts,
		Logf:        log.Printf,
	})
	if err != nil {
		return nil, fmt.Errorf("-shard-procs: %w", err)
	}
	if !failover {
		return sup.Stop, nil
	}
	runCtx, cancelRun := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		sup.Run(runCtx)
	}()
	return func() {
		// Teardown order matters: stop the restart loop first (and wait for
		// it), or a restart racing Stop could respawn a worker after Stop
		// reaped it.
		cancelRun()
		<-runDone
		sup.Stop()
	}, nil
}

// processStarter returns a ShardStarter that execs this same binary in
// -shard-worker mode, feeds it the study's worker spec on stdin, and reads
// its base URL off stdout. Called once per shard at bring-up and again on
// every supervised restart.
func processStarter(study *smishkit.Study) (smishkit.ShardStarter, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locate own binary: %w", err)
	}
	return func(_ context.Context, index int) (smishkit.ShardWorkerHandle, error) {
		spec, err := json.Marshal(study.ShardWorkerSpec(index))
		if err != nil {
			return smishkit.ShardWorkerHandle{}, fmt.Errorf("marshal worker %d spec: %w", index, err)
		}
		cmd := exec.Command(exe, "-shard-worker")
		cmd.Stdin = bytes.NewReader(spec)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			return smishkit.ShardWorkerHandle{}, fmt.Errorf("worker %d stdout: %w", index, err)
		}
		if err := cmd.Start(); err != nil {
			return smishkit.ShardWorkerHandle{}, fmt.Errorf("start worker %d: %w", index, err)
		}
		sc := bufio.NewScanner(out)
		if !sc.Scan() {
			_ = cmd.Process.Signal(syscall.SIGTERM)
			_ = cmd.Wait()
			return smishkit.ShardWorkerHandle{}, fmt.Errorf("worker %d exited before reporting its URL", index)
		}
		url := sc.Text()
		exited := make(chan error, 1)
		go func() {
			for sc.Scan() { // drain so the child never blocks on a full pipe
			}
			exited <- cmd.Wait()
			close(exited)
		}()
		return smishkit.ShardWorkerHandle{
			URL:    url,
			Exited: exited,
			Stop:   func() { _ = cmd.Process.Signal(syscall.SIGTERM) },
		}, nil
	}, nil
}
