package forum

import (
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/checkpoint"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/netutil"
)

// RedditServer speaks the listing JSON of Reddit's public search endpoint
// (§3.1.2): GET /search.json?q=...&limit=...&after=t3_<id>, with image
// posts linking to an /img/ URL. Posts may be appended while the server is
// live, so all access goes through a read-write lock.
type RedditServer struct {
	mu      sync.RWMutex
	posts   []post
	limiter *netutil.TokenBucket
}

// NewRedditServer seeds the server.
func NewRedditServer(posts []post, ratePerSec float64) *RedditServer {
	sorted := make([]post, len(posts))
	copy(sorted, posts)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].CreatedAt.Before(sorted[j].CreatedAt) })
	s := &RedditServer{posts: sorted}
	if ratePerSec > 0 {
		s.limiter = netutil.NewTokenBucket(int(ratePerSec*2)+1, ratePerSec)
	}
	return s
}

// Append publishes new posts at the tail of the listing. Batches must be
// chronologically at-or-after the existing posts: `after` resolution is
// position-based, so inserting in the middle would corrupt live cursors.
func (s *RedditServer) Append(posts []post) {
	batch := make([]post, len(posts))
	copy(batch, posts)
	sort.SliceStable(batch, func(i, j int) bool { return batch[i].CreatedAt.Before(batch[j].CreatedAt) })
	s.mu.Lock()
	s.posts = append(s.posts, batch...)
	s.mu.Unlock()
}

// Reddit wire types.
type redditListing struct {
	Kind string `json:"kind"`
	Data struct {
		After    string        `json:"after"`
		Children []redditChild `json:"children"`
	} `json:"data"`
}

type redditChild struct {
	Kind string     `json:"kind"`
	Data redditPost `json:"data"`
}

type redditPost struct {
	ID         string  `json:"id"`
	Title      string  `json:"title"`
	SelfText   string  `json:"selftext"`
	URL        string  `json:"url"`
	CreatedUTC float64 `json:"created_utc"`
	Subreddit  string  `json:"subreddit"`
}

// Handler returns the API routes.
func (s *RedditServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /search.json", s.handleSearch)
	mux.HandleFunc("GET /img/{id}", s.handleImage)
	return mux
}

func (s *RedditServer) handleSearch(w http.ResponseWriter, r *http.Request) {
	if s.limiter != nil && !s.limiter.Allow() {
		netutil.WriteRateLimited(w, s.limiter.RetryAfter(1))
		return
	}
	q := strings.ToLower(strings.Trim(r.URL.Query().Get("q"), `"`))
	if q == "" {
		netutil.WriteError(w, http.StatusBadRequest, "missing q")
		return
	}
	limit := 25
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 && n <= 100 {
			limit = n
		}
	}

	s.mu.RLock()
	defer s.mu.RUnlock()

	start := 0
	if after := r.URL.Query().Get("after"); after != "" {
		id := strings.TrimPrefix(after, "t3_")
		for i := range s.posts {
			if s.posts[i].ID == id {
				start = i + 1
				break
			}
		}
	}

	listing := redditListing{Kind: "Listing"}
	listing.Data.Children = []redditChild{}
	for i := start; i < len(s.posts); i++ {
		p := s.posts[i]
		if !strings.Contains(strings.ToLower(p.Body), q) {
			continue
		}
		rp := redditPost{
			ID:         p.ID,
			Title:      firstSentence(p.Body),
			SelfText:   p.Body,
			CreatedUTC: float64(p.CreatedAt.Unix()),
			Subreddit:  p.Subreddit,
		}
		if len(p.Attachment) > 0 {
			rp.URL = "/img/" + p.ID
		}
		listing.Data.Children = append(listing.Data.Children, redditChild{Kind: "t3", Data: rp})
		if len(listing.Data.Children) == limit {
			listing.Data.After = "t3_" + p.ID
			break
		}
	}
	netutil.WriteJSON(w, http.StatusOK, listing)
}

func (s *RedditServer) handleImage(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, p := range s.posts {
		if p.ID == id && len(p.Attachment) > 0 {
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(p.Attachment)
			return
		}
	}
	http.NotFound(w, r)
}

func firstSentence(s string) string {
	if i := strings.IndexAny(s, ".:!?"); i > 0 {
		return s[:i]
	}
	if len(s) > 80 {
		return s[:80]
	}
	return s
}

// RedditCollector drains the search endpoint for every keyword.
type RedditCollector struct {
	API      netutil.Client
	PageSize int
}

// NewRedditCollector builds a collector for the API at baseURL.
func NewRedditCollector(baseURL string) *RedditCollector {
	return &RedditCollector{API: netutil.Client{BaseURL: baseURL}, PageSize: 100}
}

// Name implements Collector.
func (c *RedditCollector) Name() corpus.Forum { return corpus.ForumReddit }

// Collect implements Collector: a full-history sync from a zero cursor.
func (c *RedditCollector) Collect(ctx ctxType, sink func(RawReport) error) error {
	_, err := c.CollectSince(ctx, checkpoint.Cursor{}, sink)
	return err
}

// CollectSince implements IncrementalCollector: each keyword resumes after
// the last listing child it consumed (after=t3_<id>) and pages forward.
//
// Pagination is keyed off children emptiness, not the `after` token: Reddit
// omits `after` on any page it considers final, including pages that still
// carry children (a mid-listing short page). The old loop treated an empty
// token as end-of-data and silently dropped everything behind such a page;
// now the collector only stops at a genuinely empty page and synthesizes
// the next position from the last child it saw.
func (c *RedditCollector) CollectSince(ctx ctxType, cur checkpoint.Cursor, sink func(RawReport) error) (checkpoint.Cursor, error) {
	next := cur.Clone()
	next.Source = "reddit"
	seen := make(map[string]bool)
	limit := c.PageSize
	if limit <= 0 {
		limit = 100
	}
	for _, kw := range Keywords {
		last := cur.Token(kw)
		after := ""
		if last != "" {
			after = "t3_" + last
		}
		for {
			path := fmt.Sprintf("/search.json?q=%s&limit=%d", url.QueryEscape(kw), limit)
			if after != "" {
				path += "&after=" + url.QueryEscape(after)
			}
			var listing redditListing
			if err := c.API.GetJSON(ctx, path, &listing); err != nil {
				return cur, fmt.Errorf("forum: reddit search %q: %w", kw, err)
			}
			children := listing.Data.Children
			if len(children) == 0 {
				break
			}
			for _, child := range children {
				p := child.Data
				if seen[p.ID] {
					continue
				}
				seen[p.ID] = true
				rep := RawReport{
					Forum:    corpus.ForumReddit,
					PostID:   p.ID,
					PostedAt: unixTime(p.CreatedUTC),
					Body:     p.SelfText,
				}
				if p.URL != "" {
					data, err := fetchBytes(ctx, &c.API, p.URL)
					if err != nil {
						return cur, fmt.Errorf("forum: reddit image %s: %w", p.ID, err)
					}
					rep.Attachment = data
				}
				if err := sink(rep); err != nil {
					return cur, err
				}
			}
			last = children[len(children)-1].Data.ID
			if listing.Data.After != "" {
				after = listing.Data.After
			} else {
				after = "t3_" + last
			}
		}
		if last != "" {
			next.SetToken(kw, last)
		}
	}
	next.Updated = time.Now().UTC()
	return next, nil
}
