package crawler

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestCrawlRedirectWithoutLocation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusFound) // no Location header
	}))
	defer srv.Close()
	res := NewCrawler().Crawl(context.Background(), srv.URL+"/x", PersonaDesktop)
	if res.Outcome != OutcomeError || res.Err == nil {
		t.Fatalf("outcome = %s err = %v", res.Outcome, res.Err)
	}
}

func TestCrawlServerError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	res := NewCrawler().Crawl(context.Background(), srv.URL+"/x", PersonaDesktop)
	if res.Outcome != OutcomeError {
		t.Fatalf("outcome = %s", res.Outcome)
	}
}

func TestCrawlTransportError(t *testing.T) {
	res := NewCrawler().Crawl(context.Background(), "http://127.0.0.1:1/unreachable", PersonaDesktop)
	if res.Outcome != OutcomeError || res.Err == nil {
		t.Fatalf("outcome = %s err = %v", res.Outcome, res.Err)
	}
}

func TestCrawlAPKByExtension(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write([]byte("PK\x03\x04payload"))
	}))
	defer srv.Close()
	res := NewCrawler().Crawl(context.Background(), srv.URL+"/internet.apk", PersonaDesktop)
	if res.Outcome != OutcomeAPKDownload {
		t.Fatalf("outcome = %s", res.Outcome)
	}
	if res.APKSize == 0 || res.APKSHA256 == "" {
		t.Errorf("apk fields: %+v", res)
	}
}

func TestCrawlZipMagicWithoutHTMLType(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("PK\x03\x04more-zip-bytes-here"))
	}))
	defer srv.Close()
	res := NewCrawler().Crawl(context.Background(), srv.URL+"/dl", PersonaAndroid)
	if res.Outcome != OutcomeAPKDownload {
		t.Fatalf("magic-sniff outcome = %s", res.Outcome)
	}
}

func TestSiteServerTakeDown(t *testing.T) {
	s := NewSiteServer()
	s.Add(SiteBehavior{Domain: "x.top", Brand: "X"})
	if !s.TakeDown("X.TOP") {
		t.Fatal("takedown missed existing site (case folding)")
	}
	if s.TakeDown("ghost.top") {
		t.Fatal("phantom takedown")
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	res := NewCrawler().Crawl(context.Background(), srv.URL+"/p?site=x.top", PersonaDesktop)
	if res.Outcome != OutcomeDead {
		t.Errorf("taken-down site outcome = %s", res.Outcome)
	}
}

func TestRouterNoScheme(t *testing.T) {
	r := &Router{SiteBase: "http://127.0.0.1:9"}
	if got := r.Rewrite("no-scheme-here"); got != "no-scheme-here" {
		t.Errorf("schemeless rewrite = %q", got)
	}
}

func TestWithParamPreservesExisting(t *testing.T) {
	if got := withParam("/p?site=a.com", "site", "b.com"); got != "/p?site=a.com" {
		t.Errorf("existing param overwritten: %q", got)
	}
	if got := withParam("/p", "site", "a.com"); got != "/p?site=a.com" {
		t.Errorf("param not appended: %q", got)
	}
}
