package annotate

import (
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/stats"
)

// Annotation is the full labeling of one message: the four properties the
// paper's GPT prompt returns (Appendix D.2).
type Annotation struct {
	ScamType corpus.ScamType
	SubType  corpus.OtherSubType // set when ScamType is Others
	Language string
	Brand    string
	Lures    []corpus.Lure
}

// Annotate runs the full labeling pipeline over a message text and its
// (optional) URL.
func Annotate(text, url string) Annotation {
	scam := ClassifyScamType(text)
	brand := DetectBrand(text, url)
	a := Annotation{
		ScamType: scam,
		Language: DetectLanguage(text),
		Brand:    brand,
		Lures:    DetectLures(text, scam, brand),
	}
	if scam == corpus.ScamOthers {
		a.SubType = ClassifyOthersSubType(text, brand)
	}
	return a
}

// Agreement holds the §3.4-style evaluation of the annotator against a
// golden label set: Cohen's kappa per property.
type Agreement struct {
	ScamKappa  float64
	BrandKappa float64
	LureKappa  float64
	LangKappa  float64
	N          int
}

// Evaluate scores predicted annotations against golden ones.
func Evaluate(golden, predicted []Annotation) (Agreement, error) {
	if len(golden) != len(predicted) {
		return Agreement{}, stats.ErrLengthMismatch
	}
	n := len(golden)
	scamG := make([]string, n)
	scamP := make([]string, n)
	brandG := make([]string, n)
	brandP := make([]string, n)
	langG := make([]string, n)
	langP := make([]string, n)
	luresG := make([][]string, n)
	luresP := make([][]string, n)
	for i := range golden {
		scamG[i], scamP[i] = string(golden[i].ScamType), string(predicted[i].ScamType)
		brandG[i], brandP[i] = golden[i].Brand, predicted[i].Brand
		langG[i], langP[i] = golden[i].Language, predicted[i].Language
		luresG[i] = lureStrings(golden[i].Lures)
		luresP[i] = lureStrings(predicted[i].Lures)
	}
	var agr Agreement
	var err error
	if agr.ScamKappa, err = stats.CohenKappa(scamG, scamP); err != nil {
		return agr, err
	}
	if agr.BrandKappa, err = stats.CohenKappa(brandG, brandP); err != nil {
		return agr, err
	}
	if agr.LangKappa, err = stats.CohenKappa(langG, langP); err != nil {
		return agr, err
	}
	if agr.LureKappa, err = stats.MultiLabelKappa(luresG, luresP); err != nil {
		return agr, err
	}
	agr.N = n
	return agr, nil
}

func lureStrings(ls []corpus.Lure) []string {
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = string(l)
	}
	return out
}
