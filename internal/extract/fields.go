package extract

import (
	"strings"
	"time"

	"github.com/smishkit/smishkit/internal/senderid"
	"github.com/smishkit/smishkit/internal/urlinfo"
)

// Fields is the curated record assembled from one report: the paper's four
// variables, validated and normalized (§3.2).
type Fields struct {
	Text       string
	Sender     string
	SenderKind senderid.Kind
	Timestamp  ParsedTime // zero Time when absent/unparsable
	URLs       []string   // every URL found in the text, refanged
}

// Assemble normalizes raw extractor output into Fields. rawURL, when the
// extractor isolated one, is merged with URLs discovered in the text; ref
// anchors partial timestamps.
func Assemble(text, sender, timestamp, rawURL string, ref time.Time) Fields {
	f := Fields{
		Text:   strings.TrimSpace(text),
		Sender: strings.TrimSpace(sender),
	}
	f.SenderKind = senderid.Classify(f.Sender)
	if timestamp != "" {
		if pt, err := ParseTimestamp(timestamp, ref); err == nil {
			f.Timestamp = pt
		}
	}
	seen := make(map[string]bool)
	push := func(u string) {
		u = urlinfo.Refang(strings.TrimSpace(u))
		if u == "" || seen[u] {
			return
		}
		if _, err := urlinfo.Parse(u); err != nil {
			return
		}
		seen[u] = true
		f.URLs = append(f.URLs, u)
	}
	push(rawURL)
	for _, u := range urlinfo.ExtractURLs(f.Text) {
		push(u)
	}
	return f
}

// PrimaryURL returns the first URL, or "".
func (f Fields) PrimaryURL() string {
	if len(f.URLs) == 0 {
		return ""
	}
	return f.URLs[0]
}
