// Package faultinject turns the enrichment-service seam into a chaos
// harness. Real measurement runs die on exactly the failures a clean
// simulation never produces — timeouts, 5xx bursts, rate-limit storms,
// hung connections, services flapping up and down — so this package
// injects them deliberately: deterministic, seed-driven decorators over
// the per-service interfaces in internal/core that fail, slow, or hang a
// configurable fraction of calls before they reach the real client.
//
// Determinism is the point. Every gate draws from its own seeded source
// (derived from Config.Seed and the service name), so a failing chaos run
// reproduces locally from the same seed; flapping windows are driven by
// the gate's call counter, not the wall clock, so a given call sequence
// always hits the same windows.
//
// Every injected fault increments "fault.<service>.injected" (plus a
// per-kind counter) in the study's telemetry registry, so a chaos run's
// blast radius is visible next to the client and breaker metrics.
package faultinject

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/netutil"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// ErrInjected marks transport-style and flap failures produced by this
// package; injected 429/5xx responses are plain *netutil.APIError values
// instead, indistinguishable from a genuinely degraded upstream (which is
// what the cache's serve-stale path and the breaker classifier must see).
var ErrInjected = fmt.Errorf("faultinject: injected fault")

// ServiceFaults configures the fault mix for one service. Rates are
// probabilities in [0, 1] evaluated per call from one deterministic draw;
// they are tried in order (error, 429, 5xx, hang, latency), so their sum
// should stay at or below 1.
type ServiceFaults struct {
	// ErrorRate injects transport-level failures (connection reset).
	ErrorRate float64
	// Rate429 injects HTTP 429 rate-limit responses.
	Rate429 float64
	// Rate5xx injects HTTP 503 server errors.
	Rate5xx float64
	// HangRate blocks the call until its context is cancelled — the hung
	// connection a deadline budget exists to bound.
	HangRate float64
	// SlowRate delays the call by Latency before letting it through.
	SlowRate float64
	// Latency is the injected delay for SlowRate calls (default 2ms).
	Latency time.Duration
	// FlapPeriod/FlapDown model a flapping service deterministically: of
	// every FlapPeriod consecutive calls, the first FlapDown fail outright
	// (before any rate is drawn). Zero disables flapping.
	FlapPeriod int
	FlapDown   int
}

// enabled reports whether any fault is configured.
func (f ServiceFaults) enabled() bool {
	return f.ErrorRate > 0 || f.Rate429 > 0 || f.Rate5xx > 0 ||
		f.HangRate > 0 || f.SlowRate > 0 || (f.FlapPeriod > 0 && f.FlapDown > 0)
}

// Config seeds an Injector. Default applies to every service; PerService
// replaces it wholesale for the named service (keyed by the telemetry
// names: hlr, whois, ctlog, dnsdb, avscan, shortener).
type Config struct {
	// Seed drives every per-service random source; the same seed and call
	// sequence reproduce the same faults.
	Seed    int64
	Default ServiceFaults
	// PerService overrides Default for one service (full replacement, not
	// a field merge).
	PerService map[string]ServiceFaults
}

func (c Config) forService(name string) ServiceFaults {
	if f, ok := c.PerService[name]; ok {
		return f
	}
	return c.Default
}

// action is one gate decision.
type action int

const (
	actPass action = iota
	actFlap
	actTransport
	act429
	act5xx
	actHang
	actSlow
)

// gate is one service's fault source: a seeded RNG, a call counter for
// flap windows, and the per-kind counters.
type gate struct {
	service string
	f       ServiceFaults

	mu    sync.Mutex
	rng   *rand.Rand
	calls int

	injected, transport, limited, server, hangs, slow, flapped *telemetry.Counter
}

func newGate(service string, f ServiceFaults, seed int64, reg *telemetry.Registry) *gate {
	if f.Latency == 0 {
		f.Latency = 2 * time.Millisecond
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(service))
	prefix := "fault." + service + "."
	return &gate{
		service:   service,
		f:         f,
		rng:       rand.New(rand.NewSource(seed ^ int64(h.Sum64()))),
		injected:  reg.Counter(prefix + "injected"),
		transport: reg.Counter(prefix + "errors"),
		limited:   reg.Counter(prefix + "rate_limited"),
		server:    reg.Counter(prefix + "server_errors"),
		hangs:     reg.Counter(prefix + "hangs"),
		slow:      reg.Counter(prefix + "latency_spikes"),
		flapped:   reg.Counter(prefix + "flapped"),
	}
}

// decide consumes exactly one counter tick and (outside flap windows) one
// random draw, keeping the decision sequence deterministic per service.
func (g *gate) decide() action {
	g.mu.Lock()
	defer g.mu.Unlock()
	seq := g.calls
	g.calls++
	if g.f.FlapPeriod > 0 && g.f.FlapDown > 0 && seq%g.f.FlapPeriod < g.f.FlapDown {
		return actFlap
	}
	draw := g.rng.Float64()
	for _, step := range []struct {
		rate float64
		act  action
	}{
		{g.f.ErrorRate, actTransport},
		{g.f.Rate429, act429},
		{g.f.Rate5xx, act5xx},
		{g.f.HangRate, actHang},
		{g.f.SlowRate, actSlow},
	} {
		if draw < step.rate {
			return step.act
		}
		draw -= step.rate
	}
	return actPass
}

// before runs the gate's decision for one call: it returns a non-nil
// error to inject, sleeps through an injected latency spike, or lets the
// call pass. Hangs block until ctx is cancelled.
func (g *gate) before(ctx context.Context) error {
	switch g.decide() {
	case actPass:
		return nil
	case actFlap:
		g.injected.Inc()
		g.flapped.Inc()
		return fmt.Errorf("faultinject: %s flapping (window down): %w", g.service, ErrInjected)
	case actTransport:
		g.injected.Inc()
		g.transport.Inc()
		return fmt.Errorf("faultinject: %s: connection reset by peer: %w", g.service, ErrInjected)
	case act429:
		g.injected.Inc()
		g.limited.Inc()
		return &netutil.APIError{Status: 429, Body: "faultinject: rate limit storm"}
	case act5xx:
		g.injected.Inc()
		g.server.Inc()
		return &netutil.APIError{Status: 503, Body: "faultinject: upstream degraded"}
	case actHang:
		g.injected.Inc()
		g.hangs.Inc()
		<-ctx.Done()
		return ctx.Err()
	case actSlow:
		g.injected.Inc()
		g.slow.Inc()
		t := time.NewTimer(g.f.Latency)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
	return nil
}
