package report

import (
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// Projection incrementally maintains the report tables' input dataset from
// per-round batches, so a long-running daemon can keep every table current
// without re-collecting history. Batches are merged by a single background
// worker; the projection.backlog_seconds gauge exports the age of the
// oldest batch still waiting to be folded in (0 when the projection is
// caught up), and projection.batches counts the batches applied.
type Projection struct {
	queue chan projBatch
	done  chan struct{}
	wg    sync.WaitGroup

	mu      sync.Mutex
	ds      *core.Dataset
	view    *QueryView
	pending []time.Time // collectedAt of submitted-but-unmerged batches
	batches int
	closed  bool

	backlog *telemetry.Gauge
	applied *telemetry.Counter
}

type projBatch struct {
	ds          *core.Dataset
	collectedAt time.Time
}

// NewProjection starts the merge worker. reg may be nil (metrics go to a
// private registry); queue <= 0 selects a default depth of 16.
func NewProjection(reg *telemetry.Registry, queue int) *Projection {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if queue <= 0 {
		queue = 16
	}
	p := &Projection{
		queue: make(chan projBatch, queue),
		done:  make(chan struct{}),
		ds: &core.Dataset{
			PostsByForum:  make(map[corpus.Forum]int, len(corpus.Forums)),
			ImagesByForum: make(map[corpus.Forum]int, len(corpus.Forums)),
		},
		view:    NewQueryView(),
		backlog: reg.Gauge("projection.backlog_seconds"),
		applied: reg.Counter("projection.batches"),
	}
	p.wg.Add(1)
	go p.run()
	return p
}

func (p *Projection) run() {
	defer p.wg.Done()
	for batch := range p.queue {
		p.merge(batch.ds)
	}
	close(p.done)
}

func (p *Projection) merge(batch *core.Dataset) {
	// The query view has its own lock; feeding it outside p.mu keeps the
	// two independent (Query readers never contend with Dataset readers).
	p.view.Add(batch.Records)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ds.Records = append(p.ds.Records, batch.Records...)
	for f, n := range batch.PostsByForum {
		p.ds.PostsByForum[f] += n
	}
	for f, n := range batch.ImagesByForum {
		p.ds.ImagesByForum[f] += n
	}
	p.ds.DecoysRejected += batch.DecoysRejected
	p.ds.EmptyDropped += batch.EmptyDropped
	p.batches++
	p.applied.Inc()
	// The worker merges in submit order, so the oldest pending batch is
	// always the head of the list.
	if len(p.pending) > 0 {
		p.pending = p.pending[1:]
	}
	p.setBacklogLocked()
}

// setBacklogLocked refreshes the backlog gauge from the pending list.
func (p *Projection) setBacklogLocked() {
	if len(p.pending) == 0 {
		p.backlog.Set(0)
		return
	}
	age := time.Since(p.pending[0])
	if age < 0 {
		age = 0
	}
	p.backlog.Set(int64(age / time.Second))
}

// Submit queues one round's processed batch for merging. collectedAt is
// when the batch's reports were collected — the timestamp the backlog
// gauge ages against. Submit blocks while the queue is full and fails on
// ctx death or after Close.
func (p *Projection) Submit(ctx context.Context, batch *core.Dataset, collectedAt time.Time) error {
	if batch == nil {
		return nil
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("report: projection closed")
	}
	p.pending = append(p.pending, collectedAt)
	p.setBacklogLocked()
	p.mu.Unlock()
	select {
	case p.queue <- projBatch{ds: batch, collectedAt: collectedAt}:
		return nil
	case <-ctx.Done():
		// The batch never entered the queue; drop its pending entry (it is
		// the newest, so it sits at the tail).
		p.mu.Lock()
		if n := len(p.pending); n > 0 {
			p.pending = p.pending[:n-1]
		}
		p.setBacklogLocked()
		p.mu.Unlock()
		return ctx.Err()
	}
}

// Wait blocks until every submitted batch has been merged (or ctx dies).
func (p *Projection) Wait(ctx context.Context) error {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		p.mu.Lock()
		idle := len(p.pending) == 0
		p.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close drains the queue, stops the worker, and waits for it. Idempotent.
func (p *Projection) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.queue)
	p.wg.Wait()
}

// Dataset returns a snapshot of the merged dataset: the record slice and
// count maps are copied, so the caller can render while the worker keeps
// merging.
func (p *Projection) Dataset() *core.Dataset {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := &core.Dataset{
		Records:        make([]core.Record, len(p.ds.Records)),
		PostsByForum:   make(map[corpus.Forum]int, len(p.ds.PostsByForum)),
		ImagesByForum:  make(map[corpus.Forum]int, len(p.ds.ImagesByForum)),
		DecoysRejected: p.ds.DecoysRejected,
		EmptyDropped:   p.ds.EmptyDropped,
	}
	copy(out.Records, p.ds.Records)
	for f, n := range p.ds.PostsByForum {
		out.PostsByForum[f] = n
	}
	for f, n := range p.ds.ImagesByForum {
		out.ImagesByForum[f] = n
	}
	return out
}

// ProjectionStats is a point-in-time reading of the projection.
type ProjectionStats struct {
	Batches        int     `json:"batches"`         // batches merged so far
	Pending        int     `json:"pending"`         // batches submitted but not yet merged
	Records        int     `json:"records"`         // records in the merged dataset
	BacklogSeconds float64 `json:"backlog_seconds"` // age of the oldest pending batch
}

// Stats returns current projection counters.
func (p *Projection) Stats() ProjectionStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := ProjectionStats{
		Batches: p.batches,
		Pending: len(p.pending),
		Records: len(p.ds.Records),
	}
	if len(p.pending) > 0 {
		st.BacklogSeconds = time.Since(p.pending[0]).Seconds()
	}
	return st
}

// Query returns the serving-side index the merge worker keeps current —
// what the /query/* endpoints answer from.
func (p *Projection) Query() *QueryView { return p.view }

// Render writes every table and figure from the current snapshot.
func (p *Projection) Render(w io.Writer) error {
	return RenderAll(w, p.Dataset())
}
