package smishkit

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/report"
)

// enrichmentServices are the backends whose client.<svc>.calls counters
// must stay zero during a durable restart: a replayed dataset was already
// enriched by the process that died.
var enrichmentServices = []string{"hlr", "whois", "ctlog", "dnsdb", "avscan", "shortener"}

// summaryJSON renders the canonical /query/summary body for a record set,
// via the same view type the daemon serves from — the reference the
// restarted daemon's HTTP answer is compared against byte-for-byte.
func summaryJSON(t *testing.T, ds *Dataset) string {
	t.Helper()
	v := report.NewQueryView()
	v.Add(ds.Records)
	data, err := json.Marshal(v.Summarize(0))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// fetchSummaryWhenComplete polls GET /query/summary until the view has
// absorbed wantRecords records (the projection merges asynchronously) and
// returns that stable body, marshalled canonically.
func fetchSummaryWhenComplete(t *testing.T, statusURL string, wantRecords int) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(statusURL + "/query/summary")
		if err != nil {
			t.Fatalf("GET /query/summary: %v", err)
		}
		var s report.Summary
		decErr := json.NewDecoder(resp.Body).Decode(&s)
		resp.Body.Close()
		if decErr != nil {
			t.Fatalf("decode summary: %v", decErr)
		}
		if s.Records == wantRecords {
			data, err := json.Marshal(s)
			if err != nil {
				t.Fatal(err)
			}
			return string(data)
		}
		if time.Now().After(deadline) {
			t.Fatalf("summary never reached %d records (at %d)", wantRecords, s.Records)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeDurableRestart is the acceptance test for the record log: a
// daemon with Options.Durability dies mid-serve (simulated by cancelling
// Serve and never closing the study — no clean shutdown, no Close
// snapshot), and a brand-new Study over the same data directory must
//
//   - re-collect nothing (cursors) and re-enrich nothing (record log):
//     every client.<svc>.calls counter stays 0 in the restarted study's
//     own registry,
//   - replay the injected wave's journal so the cursors pointing at
//     inj1-… post IDs still resolve against the fresh simulation,
//   - serve a /query/summary identical to the canonical summary of the
//     uninterrupted run, and
//   - return a Serve dataset record-identical to the uninterrupted run.
func TestServeDurableRestart(t *testing.T) {
	seed, msgs := int64(41), 300
	inject := InjectSpec{Seed: 99, Messages: 40}
	dataDir := t.TempDir()

	// LiveWaves must be 0 under durability restart: holdback waves released
	// after an injection rebase onto the injection timeline, so a restarted
	// simulation (which replays all injects after seeding all fixtures)
	// would publish them in a different order than the cursors consumed.
	mkOpts := func(reg *Collector, store CheckpointStore, durable bool, rounds int, onRound func(RoundInfo)) Options {
		o := Options{
			Seed:      seed,
			Messages:  msgs,
			Pipeline:  PipelineOptions{Streaming: true},
			Collector: reg,
			Service: &ServiceConfig{
				PollInterval: 10 * time.Millisecond,
				MaxRounds:    rounds,
				Checkpoints:  store,
				OnRound:      onRound,
			},
		}
		if durable {
			o.Durability = &DurabilityConfig{Dir: filepath.Join(dataDir, "records")}
		}
		return o
	}

	// Uninterrupted reference: collect everything plus one injected wave.
	var ref *Study
	refOpts := mkOpts(nil, NewMemCheckpoints(), false, 3, func(info RoundInfo) {
		if info.Round == 1 {
			if _, err := ref.InjectWave(inject); err != nil {
				t.Errorf("reference inject: %v", err)
			}
		}
	})
	ref, err := NewStudy(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want, err := ref.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Records) == 0 {
		t.Fatal("reference run produced no records")
	}
	wantSummary := summaryJSON(t, want)

	// First durable daemon: inject at round 1, "crash" after round 2 —
	// cancel Serve and never Close, so no final log close runs; the data
	// directory is whatever the commit path fsynced.
	store1, err := NewFileCheckpoints(filepath.Join(dataDir, "checkpoints"))
	if err != nil {
		t.Fatal(err)
	}
	ctx1, kill := context.WithCancel(context.Background())
	defer kill()
	var study1 *Study
	var killed atomic.Bool
	study1, err = NewStudy(mkOpts(nil, store1, true, 0, func(info RoundInfo) {
		if info.Err != nil {
			t.Errorf("round %d: %v", info.Round, info.Err)
		}
		if info.Round == 1 {
			if _, err := study1.InjectWave(inject); err != nil {
				t.Errorf("inject: %v", err)
			}
		}
		if info.Round == 3 && !killed.Swap(true) {
			kill()
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	first, err := study1.Serve(ctx1)
	if err != nil {
		t.Fatal(err)
	}
	if !killed.Load() {
		t.Fatal("daemon completed before the kill fired")
	}
	diffMultisets(t, "killed durable run vs uninterrupted", recMultiset(first), recMultiset(want))

	// Restart: fresh Study, fresh registry, same data directory.
	reg2 := NewCollector()
	store2, err := NewFileCheckpoints(filepath.Join(dataDir, "checkpoints"))
	if err != nil {
		t.Fatal(err)
	}
	var study2 *Study
	var recollected atomic.Int64
	var gotSummary atomic.Pointer[string]
	study2, err = NewStudy(mkOpts(reg2, store2, true, 2, func(info RoundInfo) {
		if info.Err != nil {
			t.Errorf("restart round %d: %v", info.Round, info.Err)
		}
		recollected.Add(int64(info.NewReports))
		if info.Round == 1 {
			s := fetchSummaryWhenComplete(t, study2.StatusURL(), len(want.Records))
			gotSummary.Store(&s)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer study2.Close()
	second, err := study2.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if n := recollected.Load(); n != 0 {
		t.Errorf("restarted daemon re-collected %d reports, want 0", n)
	}
	diffMultisets(t, "restarted (replayed) dataset vs uninterrupted", recMultiset(second), recMultiset(want))
	if got := gotSummary.Load(); got == nil {
		t.Error("restart summary never captured")
	} else if *got != wantSummary {
		t.Errorf("restarted /query/summary diverges from uninterrupted run:\n got: %s\nwant: %s", *got, wantSummary)
	}

	// Zero re-enrichment: the restarted study's registry never saw a single
	// backend client call — the dataset came from the log, not the services.
	snap := study2.Stats()
	for _, svc := range enrichmentServices {
		if n := snap.Telemetry.CounterValue("client." + svc + ".calls"); n != 0 {
			t.Errorf("restart made %d %s calls, want 0", n, svc)
		}
	}
	if snap.Durability == nil {
		t.Fatal("Stats().Durability is nil with Options.Durability set")
	}
	if got := snap.Durability.Replayed; got != int64(len(want.Records)) {
		t.Errorf("Stats().Durability.Replayed = %d, want %d", got, len(want.Records))
	}
	if snap.Durability.Injects != 1 {
		t.Errorf("Stats().Durability.Injects = %d, want 1", snap.Durability.Injects)
	}
}

// TestServeDurableQueryEndpoints drives /query/reports end-to-end against
// a live durable daemon: a domain known to be in the dataset must come
// back with its reports, and the unfiltered listing must respect limit.
func TestServeDurableQueryEndpoints(t *testing.T) {
	dataDir := t.TempDir()
	store, err := NewFileCheckpoints(filepath.Join(dataDir, "checkpoints"))
	if err != nil {
		t.Fatal(err)
	}
	var study *Study
	type roundSummary struct {
		total   int
		domain  string
		matched int
	}
	var probe atomic.Pointer[roundSummary]
	study, err = NewStudy(Options{
		Seed:     43,
		Messages: 200,
		Pipeline: PipelineOptions{Streaming: true},
		Service: &ServiceConfig{
			PollInterval: 10 * time.Millisecond,
			MaxRounds:    2,
			Checkpoints:  store,
			OnRound: func(info RoundInfo) {
				if info.Round != 2 {
					return
				}
				base := study.StatusURL()
				// Wait until the projection has fully merged round 1.
				deadline := time.Now().Add(10 * time.Second)
				for {
					resp, err := http.Get(base + "/query/reports?limit=5")
					if err != nil {
						t.Errorf("GET /query/reports: %v", err)
						return
					}
					var res report.ReportsResult
					decErr := json.NewDecoder(resp.Body).Decode(&res)
					resp.Body.Close()
					if decErr != nil {
						t.Errorf("decode reports: %v", decErr)
						return
					}
					if res.TotalMatched > 0 || time.Now().After(deadline) {
						ps := roundSummary{total: res.TotalMatched}
						if len(res.Reports) > 5 {
							t.Errorf("limit=5 returned %d reports", len(res.Reports))
						}
						for _, r := range res.Reports {
							if r.Domain != "" {
								ps.domain = r.Domain
								break
							}
						}
						if ps.domain != "" {
							resp2, err := http.Get(base + "/query/reports?domain=" + ps.domain)
							if err != nil {
								t.Errorf("GET by domain: %v", err)
								return
							}
							var res2 report.ReportsResult
							decErr := json.NewDecoder(resp2.Body).Decode(&res2)
							resp2.Body.Close()
							if decErr != nil {
								t.Errorf("decode by-domain: %v", decErr)
								return
							}
							ps.matched = res2.TotalMatched
							for _, r := range res2.Reports {
								if r.Domain != ps.domain {
									t.Errorf("domain filter leaked %q (want %q)", r.Domain, ps.domain)
								}
							}
						}
						probe.Store(&ps)
						return
					}
					time.Sleep(10 * time.Millisecond)
				}
			},
		},
		Durability: &DurabilityConfig{Dir: filepath.Join(dataDir, "records")},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer study.Close()
	ds, err := study.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) == 0 {
		t.Fatal("daemon produced no records")
	}
	ps := probe.Load()
	if ps == nil {
		t.Fatal("query probe never ran")
	}
	if ps.total == 0 {
		t.Fatal("live /query/reports matched nothing")
	}
	if ps.domain != "" && ps.matched == 0 {
		t.Fatalf("domain filter %q matched nothing", ps.domain)
	}
}
