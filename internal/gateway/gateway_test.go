package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/detect"
	"github.com/smishkit/smishkit/internal/telemetry"
	"github.com/smishkit/smishkit/internal/xdrfilter"
)

func testGateway(t *testing.T) *Gateway {
	t.Helper()
	w := corpus.Generate(corpus.Config{Seed: 41, Messages: 2000})
	var docs []detect.Doc
	for _, m := range w.Messages {
		docs = append(docs, detect.Doc{Text: m.Text, Label: string(m.ScamType)})
	}
	for _, ham := range corpus.GenerateHam(42, 500) {
		docs = append(docs, detect.Doc{Text: ham, Label: "ham"})
	}
	model, err := detect.Train(docs, true)
	if err != nil {
		t.Fatal(err)
	}
	return New(xdrfilter.New(xdrfilter.Config{Classifier: model, BlockBadSenders: true}))
}

func TestSubmitRouting(t *testing.T) {
	g := testGateway(t)
	ctx := context.Background()

	m, err := g.Submit(ctx, "+447700900123", "+447700900999", "running late, see you at 7")
	if err != nil {
		t.Fatal(err)
	}
	if m.Action != "delivered" {
		t.Errorf("ham action = %q (%s)", m.Action, m.Reason)
	}
	m, err = g.Submit(ctx, "SBIBNK", "+447700900999",
		"SBI alert: your account has been suspended. Update your KYC at https://sbi-kyc.top/verify today")
	if err != nil {
		t.Fatal(err)
	}
	if m.Action != "blocked" {
		t.Errorf("smish action = %q (%s)", m.Action, m.Reason)
	}

	inbox := g.Inbox("+447700900999")
	if len(inbox) != 1 || inbox[0].Text != "running late, see you at 7" {
		t.Errorf("inbox = %v", inbox)
	}
	if q := g.Quarantine(); len(q) != 1 {
		t.Errorf("quarantine = %d", len(q))
	}
	st := g.Snapshot()
	if st.Submitted != 2 || st.Delivered != 1 || st.Blocked != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReportFeedbackLoop(t *testing.T) {
	g := testGateway(t)
	ctx := context.Background()

	// A brand-new campaign slips past the classifier? Use a crafted text
	// that the classifier won't catch (ham-like wording with a link).
	evasive := "see the photos from the weekend here https://totally-new-threat.top/album"
	m, err := g.Submit(ctx, "+447700900123", "+447700900999", evasive)
	if err != nil {
		t.Fatal(err)
	}
	if m.Action == "blocked" {
		t.Skip("classifier caught the evasive text; feedback path not exercised at this seed")
	}

	// The subscriber forwards it to 7726; the domain joins the blocklist.
	added := g.Report("+447700900999", evasive)
	if added != 1 {
		t.Fatalf("blocklisted %d domains, want 1", added)
	}
	// The next copy of the campaign is blocked.
	m, err = g.Submit(ctx, "+447700900124", "+447700900888", evasive)
	if err != nil {
		t.Fatal(err)
	}
	if m.Action != "blocked" || m.Reason != string(xdrfilter.ReasonBlockedDomain) {
		t.Errorf("post-report action = %q (%s)", m.Action, m.Reason)
	}
	st := g.Snapshot()
	if st.UserReports != 1 || st.FeedbackAdd != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReportNeverBlocklistsShorteners(t *testing.T) {
	g := testGateway(t)
	added := g.Report("+44770", "got this scam https://bit.ly/abc123")
	if added != 0 {
		t.Errorf("shortener domain blocklisted (%d additions)", added)
	}
	// bit.ly traffic must still flow.
	m, err := g.Submit(context.Background(), "+447700900123", "+4477009", "link https://bit.ly/other")
	if err != nil {
		t.Fatal(err)
	}
	if m.Action == "blocked" && m.Reason == string(xdrfilter.ReasonBlockedDomain) {
		t.Error("shared shortener domain ended up blocklisted")
	}
}

func TestHTTPAPI(t *testing.T) {
	g := testGateway(t)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	post := func(path string, body any) *http.Response {
		t.Helper()
		data, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post("/v1/sms", map[string]string{
		"from": "+447700900123", "to": "+447700900999", "text": "dinner at 8?",
	})
	var m Message
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Action != "delivered" || m.ID == "" {
		t.Errorf("message = %+v", m)
	}

	// Validation errors.
	resp = post("/v1/sms", map[string]string{"from": "x"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing fields status = %d", resp.StatusCode)
	}

	// Inbox fetch.
	r, err := http.Get(srv.URL + "/v1/inbox?to=%2B447700900999")
	if err != nil {
		t.Fatal(err)
	}
	var inbox []Message
	if err := json.NewDecoder(r.Body).Decode(&inbox); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(inbox) != 1 {
		t.Errorf("inbox = %v", inbox)
	}

	// Stats.
	r, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Submitted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	g := testGateway(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				_, err := g.Submit(context.Background(),
					"+447700900123", fmt.Sprintf("+4477009%05d", i),
					"see you at 7 tonight")
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if st := g.Snapshot(); st.Submitted != 400 {
		t.Errorf("submitted = %d, want 400", st.Submitted)
	}
}

func TestHTTPValidation(t *testing.T) {
	g := testGateway(t)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	// Malformed JSON body.
	resp, err := http.Post(srv.URL+"/v1/sms", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", resp.StatusCode)
	}
	// Inbox without recipient.
	r, err := http.Get(srv.URL + "/v1/inbox")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("missing to status = %d", r.StatusCode)
	}
	// Quarantine endpoint works when empty.
	r, err = http.Get(srv.URL + "/v1/quarantine")
	if err != nil {
		t.Fatal(err)
	}
	var q []Message
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(q) != 0 {
		t.Errorf("quarantine = %v", q)
	}
	// 7726 endpoint.
	data, _ := json.Marshal(map[string]string{"from": "+44", "text": "scam https://bad-domain.top/x"})
	resp, err = http.Post(srv.URL+"/v1/report", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out["blocklisted"] != 1 {
		t.Errorf("report response = %v", out)
	}
}

func TestMessageIDsUnique(t *testing.T) {
	g := testGateway(t)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		m, err := g.Submit(context.Background(), "+447700900123", "+44", "see you at 7")
		if err != nil {
			t.Fatal(err)
		}
		if seen[m.ID] {
			t.Fatalf("duplicate id %s", m.ID)
		}
		seen[m.ID] = true
	}
}

func TestInboxRetentionEvictsOldest(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := testGateway(t).WithRetention(3).Instrument(reg)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		m, err := g.Submit(ctx, "+447700900123", "+447700900999", fmt.Sprintf("running late, see you at %d", i))
		if err != nil {
			t.Fatal(err)
		}
		if m.Action != "delivered" {
			t.Fatalf("message %d action = %q (%s)", i, m.Action, m.Reason)
		}
	}
	inbox := g.Inbox("+447700900999")
	if len(inbox) != 3 {
		t.Fatalf("inbox kept %d messages, want 3", len(inbox))
	}
	for i, m := range inbox {
		want := fmt.Sprintf("running late, see you at %d", i+2)
		if m.Text != want {
			t.Errorf("inbox[%d] = %q, want %q (eviction must drop oldest first)", i, m.Text, want)
		}
	}
	st := g.Snapshot()
	if st.Dropped != 2 {
		t.Errorf("stats.Dropped = %d, want 2", st.Dropped)
	}
	if st.Submitted != 5 || st.Delivered != 5 {
		t.Errorf("routing stats must count evicted messages too: %+v", st)
	}
	if got := reg.Snapshot().Counters["gateway.dropped"]; got != 2 {
		t.Errorf("gateway.dropped counter = %d, want 2", got)
	}
}

func TestReportLogRetentionCountsDrops(t *testing.T) {
	g := testGateway(t).WithRetention(2)
	for i := 0; i < 4; i++ {
		g.Report("+447700900999", fmt.Sprintf("suspicious text %d, no url", i))
	}
	st := g.Snapshot()
	if st.UserReports != 4 {
		t.Errorf("UserReports = %d, want 4", st.UserReports)
	}
	if st.Dropped != 2 {
		t.Errorf("stats.Dropped = %d, want 2", st.Dropped)
	}
}

func TestRingWrapsInOrder(t *testing.T) {
	r := ring{cap: 3}
	for i := 0; i < 7; i++ {
		r.push(Message{ID: fmt.Sprintf("m%d", i)})
	}
	got := r.snapshot()
	if len(got) != 3 || got[0].ID != "m4" || got[1].ID != "m5" || got[2].ID != "m6" {
		t.Errorf("snapshot after wrap = %v, want [m4 m5 m6]", got)
	}
}
