package annotate

import (
	"sort"
	"strings"

	"github.com/smishkit/smishkit/internal/textnorm"
)

// brandEntry is one recognizable organization.
type brandEntry struct {
	Name    string   // canonical name as reported (Table 12)
	Aliases []string // skeleton-form aliases matched in text
	Slugs   []string // domain-name fragments matched in URLs/hosts
}

// brandRegistry covers the corpus's impersonated organizations. Aliases are
// matched against the *skeleton* of the text (lowercased, homoglyphs
// collapsed, leetspeak undone) so "N3tfl!x" and "Ｎｅｔｆｌｉｘ" both hit.
var brandRegistry = []brandEntry{
	{"State Bank of India", []string{"state bank of india", "sbi"}, []string{"sbi"}},
	{"PayTM", []string{"paytm"}, []string{"paytm"}},
	{"HDFC", []string{"hdfc"}, []string{"hdfc"}},
	{"ICICI Bank", []string{"icici"}, []string{"icici"}},
	{"Axis Bank", []string{"axis bank"}, []string{"axis"}},
	{"Punjab National Bank", []string{"punjab national bank", "pnb"}, []string{"pnb"}},
	{"Santander", []string{"santander"}, []string{"santander"}},
	{"BBVA", []string{"bbva"}, []string{"bbva"}},
	{"CaixaBank", []string{"caixabank", "caixa"}, []string{"caixabank"}},
	{"Banco Sabadell", []string{"sabadell"}, []string{"sabadell"}},
	{"Rabobank", []string{"rabobank"}, []string{"rabobank"}},
	{"ING", []string{"ing bank", " ing "}, []string{"ing"}},
	{"ABN AMRO", []string{"abn amro", "abnamro"}, []string{"abnamro"}},
	{"HSBC", []string{"hsbc"}, []string{"hsbc"}},
	{"Barclays", []string{"barclays"}, []string{"barclays"}},
	{"Lloyds Bank", []string{"lloyds"}, []string{"lloyds"}},
	{"NatWest", []string{"natwest"}, []string{"natwest"}},
	{"Monzo", []string{"monzo"}, []string{"monzo"}},
	{"Chase", []string{"chase"}, []string{"chase"}},
	{"Bank of America", []string{"bank of america", "bofa"}, []string{"bofa"}},
	{"Wells Fargo", []string{"wells fargo", "wellsfargo"}, []string{"wellsfargo"}},
	{"Citibank", []string{"citibank", "citi"}, []string{"citi"}},
	{"PayPal", []string{"paypal"}, []string{"paypal"}},
	{"Crédit Agricole", []string{"credit agricole"}, []string{"credit-agricole"}},
	{"BNP Paribas", []string{"bnp paribas", "bnp"}, []string{"bnp"}},
	{"Société Générale", []string{"societe generale", "socgen"}, []string{"socgen"}},
	{"Sparkasse", []string{"sparkasse"}, []string{"sparkasse"}},
	{"Deutsche Bank", []string{"deutsche bank"}, []string{"deutschebank"}},
	{"Commerzbank", []string{"commerzbank"}, []string{"commerzbank"}},
	{"Intesa Sanpaolo", []string{"intesa sanpaolo", "intesa"}, []string{"intesa"}},
	{"UniCredit", []string{"unicredit"}, []string{"unicredit"}},
	{"Itaú", []string{"itau"}, []string{"itau"}},
	{"Millennium BCP", []string{"millennium bcp", "bcp"}, []string{"bcp"}},
	{"Commonwealth Bank", []string{"commonwealth bank", "commbank"}, []string{"commbank"}},
	{"ANZ", []string{"anz"}, []string{"anz"}},
	{"Westpac", []string{"westpac"}, []string{"westpac"}},
	{"KBC", []string{"kbc"}, []string{"kbc"}},
	{"Belfius", []string{"belfius"}, []string{"belfius"}},
	{"Bank BRI", []string{"bank bri", "bri"}, []string{"bri"}},
	{"Bank Mandiri", []string{"mandiri"}, []string{"mandiri"}},
	{"MUFG", []string{"mufg"}, []string{"mufg"}},
	{"SMBC", []string{"smbc"}, []string{"smbc"}},
	{"USPS", []string{"usps"}, []string{"usps"}},
	{"FedEx", []string{"fedex"}, []string{"fedex"}},
	{"UPS", []string{" ups "}, []string{"ups"}},
	{"Royal Mail", []string{"royal mail", "royalmail"}, []string{"royalmail"}},
	{"Evri", []string{"evri"}, []string{"evri"}},
	{"DPD", []string{"dpd"}, []string{"dpd"}},
	{"Hermes", []string{"hermes"}, []string{"hermes"}},
	{"Correos", []string{"correos"}, []string{"correos"}},
	{"SEUR", []string{"seur"}, []string{"seur"}},
	{"DHL", []string{"dhl"}, []string{"dhl"}},
	{"Deutsche Post", []string{"deutsche post"}, []string{"deutschepost"}},
	{"La Poste", []string{"la poste", "laposte"}, []string{"laposte"}},
	{"Chronopost", []string{"chronopost"}, []string{"chronopost"}},
	{"Colissimo", []string{"colissimo"}, []string{"colissimo"}},
	{"PostNL", []string{"postnl"}, []string{"postnl"}},
	{"Česká pošta", []string{"ceska posta", "česká pošta"}, []string{"ceskaposta"}},
	{"Australia Post", []string{"australia post", "auspost"}, []string{"auspost"}},
	{"StarTrack", []string{"startrack"}, []string{"startrack"}},
	{"India Post", []string{"india post"}, []string{"indiapost"}},
	{"Delhivery", []string{"delhivery"}, []string{"delhivery"}},
	{"Poste Italiane", []string{"poste italiane"}, []string{"poste"}},
	{"BRT", []string{" brt "}, []string{"brt"}},
	{"bpost", []string{"bpost"}, []string{"bpost"}},
	{"Japan Post", []string{"japan post"}, []string{"japanpost"}},
	{"Yamato", []string{"yamato"}, []string{"yamato"}},
	{"JNE", []string{" jne "}, []string{"jne"}},
	{"Pos Indonesia", []string{"pos indonesia"}, []string{"posindonesia"}},
	{"Internal Revenue Service", []string{"internal revenue service", "irs"}, []string{"irs"}},
	{"Social Security Administration", []string{"social security"}, []string{"ssa"}},
	{"DMV", []string{"dmv"}, []string{"dmv"}},
	{"HMRC", []string{"hmrc"}, []string{"hmrc"}},
	{"DVLA", []string{"dvla"}, []string{"dvla"}},
	{"NHS", []string{"nhs"}, []string{"nhs"}},
	{"impots.gouv.fr", []string{"impots.gouv", "impots"}, []string{"impots"}},
	{"Ameli", []string{"ameli"}, []string{"ameli"}},
	{"ANTAI", []string{"antai"}, []string{"antai"}},
	{"myGov", []string{"mygov"}, []string{"mygov"}},
	{"ATO", []string{" ato "}, []string{"ato"}},
	{"Belastingdienst", []string{"belastingdienst"}, []string{"belastingdienst"}},
	{"DigiD", []string{"digid"}, []string{"digid"}},
	{"Agencia Tributaria", []string{"agencia tributaria"}, []string{"aeat"}},
	{"Seguridad Social", []string{"seguridad social"}, []string{"seg-social"}},
	{"Income Tax Department", []string{"income tax department"}, []string{"incometax"}},
	{"EPFO", []string{"epfo"}, []string{"epfo"}},
	{"Bundesfinanzministerium", []string{"bundesfinanzministerium"}, []string{"bzst"}},
	{"Agenzia delle Entrate", []string{"agenzia delle entrate"}, []string{"agenziaentrate"}},
	{"O2", []string{" o2 ", "o2:"}, []string{"o2"}},
	{"EE", []string{" ee ", "ee:"}, []string{"ee"}},
	{"Vodafone", []string{"vodafone"}, []string{"vodafone"}},
	{"Three", []string{"three:"}, []string{"three"}},
	{"SFR", []string{"sfr"}, []string{"sfr"}},
	{"Orange", []string{"orange"}, []string{"orange"}},
	{"Bouygues", []string{"bouygues"}, []string{"bouygues"}},
	{"Movistar", []string{"movistar"}, []string{"movistar"}},
	{"KPN", []string{"kpn"}, []string{"kpn"}},
	{"Airtel", []string{"airtel"}, []string{"airtel"}},
	{"Jio", []string{"jio"}, []string{"jio"}},
	{"Vi", []string{" vi:"}, []string{"vi"}},
	{"Verizon", []string{"verizon"}, []string{"verizon"}},
	{"AT&T", []string{"at&t", "att:"}, []string{"att"}},
	{"T-Mobile", []string{"t-mobile", "tmobile"}, []string{"tmobile"}},
	{"Telekom", []string{"telekom:"}, []string{"telekom"}},
	{"Telstra", []string{"telstra"}, []string{"telstra"}},
	{"Optus", []string{"optus"}, []string{"optus"}},
	{"TIM", []string{"tim:"}, []string{"tim"}},
	{"Proximus", []string{"proximus"}, []string{"proximus"}},
	{"Amazon", []string{"amazon"}, []string{"amazon"}},
	{"Netflix", []string{"netflix"}, []string{"netflix"}},
	{"Facebook", []string{"facebook"}, []string{"facebook"}},
	{"Coinbase", []string{"coinbase"}, []string{"coinbase"}},
	{"Apple", []string{"apple"}, []string{"apple"}},
	{"WhatsApp", []string{"whatsapp"}, []string{"whatsapp"}},
	{"Telegram", []string{"telegram"}, []string{"telegram"}},
	{"Standard Chartered", []string{"standard chartered"}, []string{"sc"}},
	{"Tax Authority", []string{"tax authority"}, []string{"tax"}},
	{"Customs Office", []string{"customs office"}, []string{"customs"}},
}

// slugIndex maps slug -> brand for URL-based attribution. Longer slugs win.
var slugIndex = func() map[string]string {
	idx := make(map[string]string)
	for _, e := range brandRegistry {
		for _, s := range e.Slugs {
			idx[s] = e.Name
		}
	}
	return idx
}()

// sortedSlugs caches slugs longest-first for greedy host matching.
var sortedSlugs = func() []string {
	out := make([]string, 0, len(slugIndex))
	for s := range slugIndex {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}()

// DetectBrand finds the impersonated organization in a message, using the
// normalized text first and the URL host as a fallback (scammers often name
// the brand only in the domain). Returns "" when nothing matches —
// conversation scams carry no brand.
func DetectBrand(text, urlStr string) string {
	// Undo spacing tricks per token so "P-a-y-P-a-l" folds before matching.
	fields := strings.Fields(text)
	for i, f := range fields {
		fields[i] = textnorm.StripSpacingTricks(f)
	}
	skeleton := textnorm.Skeleton(strings.Join(fields, " "))
	// wordForm strips punctuation so "netflix:" matches the word alias;
	// rawForm keeps it for punctuation-bearing aliases ("at&t", "o2:").
	wordForm := " " + stripPunct(skeleton) + " "
	rawForm := " " + skeleton + " "
	for _, e := range brandRegistry {
		for _, alias := range e.Aliases {
			if strings.ContainsAny(alias, ":.&") || strings.HasPrefix(alias, " ") {
				if strings.Contains(rawForm, alias) {
					return e.Name
				}
				continue
			}
			if strings.Contains(wordForm, " "+alias+" ") {
				return e.Name
			}
		}
	}
	if urlStr != "" {
		host := hostPart(urlStr)
		hostCore := strings.NewReplacer(".", "-").Replace(host)
		for _, slug := range sortedSlugs {
			if len(slug) < 3 {
				// Short slugs only match as a full hyphen-separated part.
				if containsPart(hostCore, slug) {
					return slugIndex[slug]
				}
				continue
			}
			if strings.Contains(hostCore, slug) {
				return slugIndex[slug]
			}
		}
	}
	return ""
}

func hostPart(u string) string {
	s := strings.ToLower(u)
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexAny(s, "/?"); i >= 0 {
		s = s[:i]
	}
	return s
}

func containsPart(hostCore, slug string) bool {
	for _, part := range strings.Split(hostCore, "-") {
		if part == slug {
			return true
		}
	}
	return false
}

// stripPunct replaces non-alphanumeric runes with spaces and collapses
// whitespace, producing the token form for word-boundary alias matching.
func stripPunct(s string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == ' ':
			return r
		case r > 127: // keep non-ASCII letters (brand names in native scripts)
			return r
		default:
			return ' '
		}
	}, s)
	return strings.Join(strings.Fields(mapped), " ")
}
