package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/annotate"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/dnsdb"
	"github.com/smishkit/smishkit/internal/extract"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/screenshot"
	"github.com/smishkit/smishkit/internal/senderid"
	"github.com/smishkit/smishkit/internal/shortener"
	"github.com/smishkit/smishkit/internal/telemetry"
	"github.com/smishkit/smishkit/internal/urlinfo"
)

// Options tunes the pipeline.
type Options struct {
	// Extractor reads screenshot attachments; defaults to StructuredVision
	// (the rung the paper settled on in §3.2).
	Extractor screenshot.Extractor
	// EnrichWorkers is the enrichment fan-out width (default 8; negative
	// is a construction error).
	EnrichWorkers int
	// Telemetry receives per-stage spans, per-record curation outcomes,
	// and enrichment latency. Nil gets a private registry so
	// Pipeline.Telemetry always works.
	Telemetry *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.Extractor == nil {
		o.Extractor = screenshot.StructuredVision{}
	}
	if o.EnrichWorkers == 0 {
		o.EnrichWorkers = 8
	}
	if o.Telemetry == nil {
		o.Telemetry = telemetry.NewRegistry()
	}
	return o
}

// Pipeline runs collection output through curation, enrichment, and
// annotation.
type Pipeline struct {
	services Services
	opts     Options
	tel      *telemetry.Registry
	met      pipelineMetrics
}

// pipelineMetrics pre-resolves the hot-path instruments so per-record
// increments are pointer-chasing only (no registry lookups, no allocs).
type pipelineMetrics struct {
	curateOK    *telemetry.Counter
	curateDecoy *telemetry.Counter
	curateEmpty *telemetry.Counter
	enriched    *telemetry.Counter
	annotated   *telemetry.Counter
	busyWorkers *telemetry.Gauge
	recordLat   *telemetry.Histogram
}

// NewPipeline builds a pipeline over the given services. It fails on
// invalid options (currently a negative worker count) so facades can tear
// down already-booted resources instead of deferring the blowup to Run.
func NewPipeline(services Services, opts Options) (*Pipeline, error) {
	if opts.EnrichWorkers < 0 {
		return nil, errors.New("core: EnrichWorkers must not be negative")
	}
	opts = opts.withDefaults()
	tel := opts.Telemetry
	return &Pipeline{
		services: services,
		opts:     opts,
		tel:      tel,
		met: pipelineMetrics{
			curateOK:    tel.Counter("pipeline.curate.ok"),
			curateDecoy: tel.Counter("pipeline.curate.decoy"),
			curateEmpty: tel.Counter("pipeline.curate.empty"),
			enriched:    tel.Counter("pipeline.enrich.records"),
			annotated:   tel.Counter("pipeline.annotate.records"),
			busyWorkers: tel.Gauge("pipeline.enrich.busy_workers"),
			recordLat:   tel.Histogram("pipeline.enrich.record_latency"),
		},
	}, nil
}

// Telemetry returns the registry the pipeline records into.
func (p *Pipeline) Telemetry() *telemetry.Registry { return p.tel }

// Curate turns raw forum reports into records: it reads screenshot
// attachments with the configured extractor, rejects non-SMS decoys, pulls
// quoted SMS texts out of post bodies, and normalizes the four variables
// (§3.2). Reports whose attachment is unreadable for the extractor count
// as EmptyDropped — the pytesseract failure mode.
func (p *Pipeline) Curate(reports []forum.RawReport) *Dataset {
	sp := p.tel.StartSpan("curate")
	defer sp.End()
	ds := &Dataset{
		PostsByForum:  make(map[corpus.Forum]int),
		ImagesByForum: make(map[corpus.Forum]int),
	}
	for _, rep := range reports {
		ds.PostsByForum[rep.Forum]++
		rec, status := p.curateOne(rep)
		switch status {
		case curatedOK:
			p.met.curateOK.Inc()
			ds.Records = append(ds.Records, rec)
			if rec.FromImage {
				ds.ImagesByForum[rep.Forum]++
			}
		case curatedDecoy:
			p.met.curateDecoy.Inc()
			if rep.HasAttachment() {
				ds.ImagesByForum[rep.Forum]++
			}
			ds.DecoysRejected++
		case curatedEmpty:
			p.met.curateEmpty.Inc()
			ds.EmptyDropped++
		}
	}
	return ds
}

type curationStatus int

const (
	curatedOK curationStatus = iota
	curatedDecoy
	curatedEmpty
)

func (p *Pipeline) curateOne(rep forum.RawReport) (Record, curationStatus) {
	var text, sender, stamp, rawURL string
	fromImage := false

	switch {
	case rep.HasAttachment():
		img, err := screenshot.Decode(rep.Attachment)
		if err != nil {
			return Record{}, curatedEmpty
		}
		ext, err := p.opts.Extractor.Extract(img)
		if err != nil {
			return Record{}, curatedEmpty // engine could not read the image
		}
		if !ext.OK {
			return Record{}, curatedDecoy // not an SMS screenshot
		}
		text, sender, stamp, rawURL = ext.Text, ext.Sender, ext.Timestamp, ext.URL
		fromImage = true
		// Naive engines return the whole grid as text with no structure;
		// a purely-poster text yields no usable SMS either way.
	case rep.SMSText != "":
		text, sender, stamp = rep.SMSText, rep.SenderID, rep.Timestamp
	default:
		// Twitter/Reddit text post: the SMS may be quoted in the body.
		text, sender = parseQuotedBody(rep.Body)
		if text == "" {
			return Record{}, curatedEmpty // awareness post / chatter
		}
	}
	if strings.TrimSpace(text) == "" {
		return Record{}, curatedEmpty
	}

	fields := extract.Assemble(text, sender, stamp, rawURL, rep.PostedAt)
	rec := Record{
		ID:         rep.PostID,
		Forum:      rep.Forum,
		PostedAt:   rep.PostedAt,
		FromImage:  fromImage,
		Text:       fields.Text,
		SenderRaw:  fields.Sender,
		SenderKind: fields.SenderKind,
		Timestamp:  fields.Timestamp,
		ShownURL:   fields.PrimaryURL(),
	}
	if rec.ShownURL != "" {
		if info, err := urlinfo.Parse(rec.ShownURL); err == nil {
			rec.URLInfo = info
			rec.Shortener = info.Shortener
		}
	}
	return rec, curatedOK
}

// parseQuotedBody recovers `commentary: "SMS TEXT" from SENDER` bodies.
func parseQuotedBody(body string) (text, sender string) {
	start := strings.Index(body, `"`)
	if start < 0 {
		return "", ""
	}
	end := strings.LastIndex(body, `"`)
	if end <= start {
		return "", ""
	}
	text = body[start+1 : end]
	rest := body[end+1:]
	if i := strings.Index(rest, " from "); i >= 0 {
		sender = strings.TrimSpace(rest[i+len(" from "):])
	}
	return text, sender
}

// Enrich fans records out over the service clients: shortener expansion,
// HLR lookups on phone senders, and WHOIS / CT / passive-DNS / AV lookups
// on landing URLs. Per-record service failures degrade that record, not
// the run; the first context/transport-level error aborts.
func (p *Pipeline) Enrich(ctx context.Context, ds *Dataset) error {
	sp := p.tel.StartSpan("enrich")
	defer sp.End()
	jobs := make(chan int)
	var wg sync.WaitGroup
	errOnce := sync.Once{}
	var firstErr error
	abort := make(chan struct{})
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(abort)
		})
	}

	for w := 0; w < p.opts.EnrichWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				p.met.busyWorkers.Add(1)
				start := time.Now()
				err := p.enrichOne(ctx, &ds.Records[idx])
				p.met.recordLat.Observe(time.Since(start))
				p.met.busyWorkers.Add(-1)
				if err != nil {
					fail(err)
					return
				}
				p.met.enriched.Inc()
			}
		}()
	}
loop:
	for i := range ds.Records {
		select {
		case jobs <- i:
		case <-abort:
			break loop
		case <-ctx.Done():
			fail(ctx.Err())
			break loop
		}
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// enrichOne resolves every enrichment source for one record.
func (p *Pipeline) enrichOne(ctx context.Context, rec *Record) error {
	// 1. Shortener expansion.
	rec.FinalURL = rec.ShownURL
	if rec.Shortener != "" && p.services.Shortener != nil {
		service, code := splitShort(rec.ShownURL)
		if service != "" && code != "" {
			target, err := p.services.Shortener.Expand(ctx, service, code)
			switch {
			case err == nil:
				rec.FinalURL = target
			case errors.Is(err, shortener.ErrNotFound), errors.Is(err, shortener.ErrTakenDown):
				rec.FinalURL = "" // chain lost (§3.3.5)
			default:
				return err
			}
		}
	}
	if rec.FinalURL != "" {
		if info, err := urlinfo.Parse(rec.FinalURL); err == nil {
			rec.Domain = info.Domain
		}
	}

	// 2. HLR on phone senders.
	if rec.SenderKind == senderid.KindPhone && p.services.HLR != nil {
		res, err := p.services.HLR.Lookup(ctx, rec.SenderRaw)
		if err != nil {
			return err
		}
		rec.HLR = res
		rec.HLRDone = true
	}

	// 3. Domain intelligence.
	if rec.Domain != "" && !isSharedPlatform(rec) {
		if p.services.Whois != nil {
			w, found, err := p.services.Whois.Lookup(ctx, rec.Domain)
			if err != nil {
				return err
			}
			rec.Whois, rec.WhoisFound = w, found
		}
		if p.services.CTLog != nil {
			sum, err := p.services.CTLog.Summary(ctx, rec.Domain)
			if err != nil {
				return err
			}
			rec.CT = sum
		}
		if p.services.DNSDB != nil {
			obs, err := p.services.DNSDB.Resolutions(ctx, rec.Domain)
			if err != nil {
				return err
			}
			rec.PDNS = obs
			// Cross-record IP dedup lives in the enrichcache layer (the
			// same IP resolved for every record sharing a domain used to
			// re-query here); within one record a linear pair scan keeps
			// the AS list unique without a per-record map allocation.
			for _, o := range obs {
				info, err := p.services.DNSDB.ASOf(ctx, o.IP)
				if errors.Is(err, dnsdb.ErrNoRoute) {
					continue
				}
				if err != nil {
					return err
				}
				if !hasASPair(rec.ASNames, rec.ASCountries, info.Name, info.Country) {
					rec.ASNames = append(rec.ASNames, info.Name)
					rec.ASCountries = append(rec.ASCountries, info.Country)
				}
			}
		}
	}

	// 4. AV verdicts on the landing URL.
	if rec.FinalURL != "" && p.services.AVScan != nil {
		scan, err := p.services.AVScan.Scan(ctx, rec.FinalURL)
		if err != nil {
			return err
		}
		rec.VTMalicious = scan.Stats.Malicious
		rec.VTSuspicious = scan.Stats.Suspicious
		gsb, err := p.services.AVScan.GSBLookup(ctx, rec.FinalURL)
		if err != nil {
			return err
		}
		rec.GSBMatched = gsb.Matched
		tr, blocked, err := p.services.AVScan.Transparency(ctx, rec.FinalURL)
		if err != nil {
			return err
		}
		rec.GSBBlocked = blocked
		if !blocked {
			rec.GSBStatus = string(tr.Status)
		}
	}
	return nil
}

// hasASPair reports whether the parallel name/country lists already hold
// the pair; records see at most a handful of ASes, so a scan beats a map.
func hasASPair(names, countries []string, name, country string) bool {
	for i := range names {
		if names[i] == name && countries[i] == country {
			return true
		}
	}
	return false
}

// isSharedPlatform reports whether the record's domain belongs to someone
// else's infrastructure (shorteners, chat deep links), where WHOIS/CT/pDNS
// describe the platform rather than the scammer.
func isSharedPlatform(rec *Record) bool {
	if rec.URLInfo.Messaging != "" {
		return true
	}
	_, isShort := urlinfo.Shorteners[rec.Domain]
	return isShort
}

// splitShort decomposes "https://bit.ly/abc" into ("bit.ly", "abc"),
// dropping any query string or fragment after the code.
func splitShort(u string) (service, code string) {
	s := u
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	host, rest, ok := strings.Cut(s, "/")
	if !ok {
		return "", ""
	}
	code, _, _ = strings.Cut(rest, "?")
	code, _, _ = strings.Cut(code, "#")
	return strings.ToLower(host), code
}

// Annotate labels every record (§3.3.6).
func (p *Pipeline) Annotate(ds *Dataset) {
	sp := p.tel.StartSpan("annotate")
	defer sp.End()
	for i := range ds.Records {
		rec := &ds.Records[i]
		rec.Annotation = annotate.Annotate(rec.Text, rec.ShownURL)
		p.met.annotated.Inc()
	}
}

// Run executes curate -> enrich -> annotate over collected reports.
func (p *Pipeline) Run(ctx context.Context, reports []forum.RawReport) (*Dataset, error) {
	ds := p.Curate(reports)
	if err := p.Enrich(ctx, ds); err != nil {
		return ds, err
	}
	p.Annotate(ds)
	return ds, nil
}
