package smishkit

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/checkpoint"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/report"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// InjectSpec describes one synthetic report wave for load injection — the
// body POST /inject accepts and the argument Study.InjectWave takes. See
// the core type for field semantics.
type InjectSpec = core.InjectSpec

// MaxInjectMessages bounds one injected wave's Messages.
const MaxInjectMessages = core.MaxInjectMessages

// Checkpoint types, re-exported so daemon callers never import internal
// paths.
type (
	// Cursor is one forum's durable collection position.
	Cursor = checkpoint.Cursor
	// CheckpointStore persists cursors across daemon restarts.
	CheckpointStore = checkpoint.Store
)

// NewMemCheckpoints returns an in-memory cursor store (lost on exit).
func NewMemCheckpoints() CheckpointStore { return checkpoint.NewMemStore() }

// NewFileCheckpoints returns a cursor store persisting one JSON file per
// forum under dir, creating it if needed — the store a restarted daemon
// resumes from.
func NewFileCheckpoints(dir string) (CheckpointStore, error) { return checkpoint.NewFileStore(dir) }

// ServiceConfig tunes Study.Serve, the long-running service mode.
type ServiceConfig struct {
	// PollInterval is the idle time between collection rounds (default 2s).
	PollInterval time.Duration
	// Checkpoints persists each forum's cursor after every successful
	// round. Default: an in-memory store, which survives repeated Serve
	// calls on one Study but not a process restart; use NewFileCheckpoints
	// for durability.
	Checkpoints CheckpointStore
	// MaxRounds stops the daemon after that many rounds (0 = run until ctx
	// is cancelled).
	MaxRounds int
	// LiveWaves > 0 holds back that many chronological fixture waves at
	// simulation boot and releases one before each round after the first,
	// so the daemon observes reports arriving over time. 0 publishes all
	// fixtures up front.
	LiveWaves int
	// InitialShare is the fraction of fixtures seeded up front when
	// LiveWaves is set (0 selects the default of 0.5).
	InitialShare float64
	// DrainTimeout bounds how long a cancelled Serve keeps processing the
	// in-flight round before giving up on it (default 30s).
	DrainTimeout time.Duration
	// ProjectionQueue bounds how many processed batches may wait for the
	// projection worker (0 selects the default of 16).
	ProjectionQueue int
	// OnRound, when non-nil, is called after every round with that round's
	// outcome — the seam tests use to cancel or inspect mid-flight.
	OnRound func(RoundInfo)
	// OnReady, when non-nil, is called exactly once per Serve call, after
	// the status endpoint has bound but before the first collection round,
	// with the endpoint's base URL. It replaces polling Study.StatusURL in
	// a sleep loop; the callback runs synchronously, so it must return
	// promptly (hand the URL to a channel or a file and get out).
	OnReady func(statusURL string)
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.PollInterval == 0 {
		c.PollInterval = 2 * time.Second
	}
	if c.Checkpoints == nil {
		c.Checkpoints = checkpoint.NewMemStore()
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// RoundInfo is one Serve round's outcome.
type RoundInfo struct {
	// Round numbers from 1.
	Round int
	// NewReports is how many raw reports this round's collectors returned.
	NewReports int
	// Records is the cumulative record count in the projection after this
	// round's batch was submitted (the projection merges asynchronously, so
	// a just-submitted batch may not be folded in yet).
	Records int
	// Err is the round's first collection or processing error (nil on a
	// clean round). A failed round commits nothing; its reports are
	// re-collected next round.
	Err error
}

// ServiceStatsSchemaVersion is the current GET /status JSON layout
// version. External pollers (cmd/benchwatch and anything like it) should
// check it and refuse layouts they don't understand; fields are only ever
// added within a version, never renamed or repurposed.
const ServiceStatsSchemaVersion = 1

// RoundQuantiles summarizes serve-round wall time in milliseconds, from
// the daemon's round-duration histogram (estimates bounded by the bucket
// layout; Max is exact).
type RoundQuantiles struct {
	// Count is how many completed rounds the quantiles summarize.
	Count int64 `json:"count"`
	// P50/P95/P99 are round-duration percentiles in milliseconds.
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
	// Max is the slowest completed round in milliseconds.
	Max float64 `json:"max_ms"`
}

// ServiceStats is a point-in-time reading of a serving Study — the
// versioned machine-readable schema GET /status serves, so external
// pollers never have to scrape the human-oriented telemetry dump.
type ServiceStats struct {
	// SchemaVersion identifies this JSON layout
	// (ServiceStatsSchemaVersion).
	SchemaVersion int `json:"schema_version"`
	// Rounds completed (failed rounds included).
	Rounds int `json:"rounds"`
	// Reports collected and committed across all rounds.
	Reports int `json:"reports"`
	// Records in the merged projection dataset.
	Records int `json:"records"`
	// PendingBatches counts processed batches not yet merged.
	PendingBatches int `json:"pending_batches"`
	// BacklogSeconds is the age of the oldest batch still waiting to be
	// merged into the projection (0 when caught up).
	BacklogSeconds float64 `json:"backlog_seconds"`
	// Reports1m maps every forum source to the reports it committed in the
	// trailing 60 seconds; all five sources are always present.
	Reports1m map[string]int `json:"reports_1m"`
	// Reports1mTotal is the trailing-60s committed-report total across all
	// forums — the daemon's recent ingest throughput.
	Reports1mTotal int `json:"reports_1m_total"`
	// InjectedPosts counts forum posts appended through load injection
	// (POST /inject or Study.InjectWave) since the simulation booted.
	InjectedPosts int `json:"injected_posts"`
	// RoundMS summarizes completed-round wall time.
	RoundMS RoundQuantiles `json:"round_ms"`
	// Cursors maps each forum source to its committed cursor.
	Cursors map[string]Cursor `json:"cursors"`
	// StatusURL is the daemon's status endpoint ("" when not serving).
	StatusURL string `json:"status_url"`
}

// recentCommit is one committed round's per-forum report counts, kept for
// the trailing-window throughput fields.
type recentCommit struct {
	at    time.Time
	bySrc map[string]int
	total int
}

// serveState is the live state one Serve call maintains and the status
// endpoint reads.
type serveState struct {
	mu        sync.Mutex
	rounds    int
	reports   int
	recent    []recentCommit // committed rounds, pruned to the last 60s
	statusURL string
	proj      *report.Projection
	store     CheckpointStore
	roundHist *telemetry.Histogram // completed-round wall time
	injected  func() int           // simulation's injected-post total
}

// commitCounts records one committed round's per-forum counts and prunes
// entries that have aged out of the trailing window.
func (st *serveState) commitCounts(bySrc map[string]int, total int, now time.Time) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.reports += total
	st.recent = append(st.recent, recentCommit{at: now, bySrc: bySrc, total: total})
	st.pruneLocked(now)
}

func (st *serveState) pruneLocked(now time.Time) {
	cutoff := now.Add(-time.Minute)
	keep := st.recent[:0]
	for _, rc := range st.recent {
		if rc.at.After(cutoff) {
			keep = append(keep, rc)
		}
	}
	st.recent = keep
}

func (st *serveState) stats() ServiceStats {
	st.mu.Lock()
	out := ServiceStats{
		SchemaVersion: ServiceStatsSchemaVersion,
		Rounds:        st.rounds,
		Reports:       st.reports,
		Reports1m:     make(map[string]int, len(forum.Sources)),
		StatusURL:     st.statusURL,
		Cursors:       map[string]Cursor{},
	}
	st.pruneLocked(time.Now())
	for _, src := range forum.Sources {
		out.Reports1m[src] = 0
	}
	for _, rc := range st.recent {
		for src, n := range rc.bySrc {
			out.Reports1m[src] += n
		}
		out.Reports1mTotal += rc.total
	}
	proj, store, hist, injected := st.proj, st.store, st.roundHist, st.injected
	st.mu.Unlock()
	if hist != nil {
		hs := hist.Stats()
		out.RoundMS = RoundQuantiles{
			Count: hs.Count,
			P50:   durMillis(hs.P50),
			P95:   durMillis(hs.P95),
			P99:   durMillis(hs.P99),
			Max:   durMillis(hs.Max),
		}
	}
	if injected != nil {
		out.InjectedPosts = injected()
	}
	if proj != nil {
		ps := proj.Stats()
		out.Records = ps.Records
		out.PendingBatches = ps.Pending
		out.BacklogSeconds = ps.BacklogSeconds
	}
	if store != nil {
		if all, err := store.All(); err == nil {
			out.Cursors = all
		}
	}
	return out
}

func durMillis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// InjectWave synthesizes a deterministic report wave and appends it to the
// study's live forum servers — the in-process form of the daemon's
// POST /inject. It works with or without Serve running: a batch study can
// inject then Collect, a serving study's collectors pick the wave up on
// their next round. When the study has a record log the spec is journaled
// first, so a restarted study replays the wave into its fresh simulation
// and the durable cursors pointing into it stay resolvable; a journaling
// failure fails the injection (an unjournaled wave would strand cursors on
// restart). Returns how many posts (reports plus noise) were appended.
func (s *Study) InjectWave(spec InjectSpec) (int, error) {
	if s.rlog != nil {
		if err := s.rlog.AppendInject(spec, time.Now()); err != nil {
			return 0, err
		}
	}
	return s.Sim.Inject(spec)
}

// writeInjectError reports an /inject failure as a JSON error body.
func writeInjectError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// StatusURL returns the base URL of the serving Study's status endpoint
// (GET /status for ServiceStats, GET /debug/telemetry for the metrics
// snapshot), or "" when Serve is not running.
func (s *Study) StatusURL() string {
	st := s.svc
	if st == nil {
		return ""
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.statusURL
}

// Serve runs the study as a long-running daemon: every PollInterval it
// asks each forum collector for reports newer than its durable cursor,
// pushes the new batch through the streaming pipeline, folds the result
// into the incrementally-maintained report projection, and commits the
// advanced cursors. Rounds are atomic — a collector or pipeline failure
// discards the round's partial progress and leaves every cursor where it
// was, so an interrupted daemon resumed from the same CheckpointStore
// re-collects exactly the reports it never committed (no duplicates, no
// holes).
//
// Cancelling ctx is the clean shutdown: the in-flight round is drained
// (bounded by DrainTimeout), the projection is flushed, and the merged
// dataset so far is returned with a nil error. Serve requires
// Options.Pipeline.Streaming.
func (s *Study) Serve(ctx context.Context) (*Dataset, error) {
	if !s.opts.Pipeline.Streaming {
		return nil, fmt.Errorf("smishkit: Serve requires Options.Pipeline.Streaming")
	}
	var cfg ServiceConfig
	if s.opts.Service != nil {
		cfg = *s.opts.Service
	}
	cfg = cfg.withDefaults()

	reg := s.Pipe.Telemetry()
	st := &serveState{store: cfg.Checkpoints}
	st.proj = report.NewProjection(reg, cfg.ProjectionQueue)
	st.roundHist = reg.Histogram("serve.round_duration")
	st.injected = s.Sim.InjectedPosts
	defer st.proj.Close()
	s.svc = st

	// Seed the projection with the record log's replayed dataset before the
	// status endpoint binds, so /query/* and /status never report an empty
	// dataset that durable history contradicts. The seed needs no
	// enrichment: these records were enriched before the previous process
	// died — that is the whole point of the log.
	if s.rlog != nil {
		seed := s.rlog.Dataset()
		if len(seed.Records) > 0 || seed.DecoysRejected != 0 || seed.EmptyDropped != 0 {
			if err := st.proj.Submit(ctx, seed, time.Now()); err != nil {
				return nil, fmt.Errorf("smishkit: seed projection from record log: %w", err)
			}
		}
	}

	// Status endpoint: /status + /debug/telemetry + /inject on an ephemeral
	// loopback port, alive for the duration of this Serve call.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st.stats())
	})
	mux.Handle("GET /debug/telemetry", telemetry.Handler(reg))
	// Read-only query layer over the projected dataset, served from the
	// index the projection worker keeps current (replayed history included
	// when the study has a record log).
	mux.Handle("GET /query/reports", st.proj.Query().ReportsHandler())
	mux.Handle("GET /query/summary", st.proj.Query().SummaryHandler())
	// Load injection: POST /inject appends a synthetic report wave to the
	// live forum servers (the seam cmd/loadgen drives). The wave is visible
	// to the daemon's own collectors on its next round, closing the loop.
	mux.HandleFunc("POST /inject", func(w http.ResponseWriter, r *http.Request) {
		var spec InjectSpec
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
			writeInjectError(w, http.StatusBadRequest, fmt.Errorf("decode inject spec: %w", err))
			return
		}
		n, err := s.InjectWave(spec)
		if err != nil {
			writeInjectError(w, http.StatusBadRequest, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\n  \"appended_posts\": %d\n}\n", n)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("smishkit: bind status endpoint: %w", err)
	}
	statusSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = statusSrv.Serve(ln) }()
	defer func() { _ = statusSrv.Close() }()
	st.mu.Lock()
	st.statusURL = "http://" + ln.Addr().String()
	st.mu.Unlock()
	if cfg.OnReady != nil {
		cfg.OnReady(st.statusURL)
	}

	collectors, err := s.incrementalCollectors()
	if err != nil {
		return nil, err
	}

	// Load the resume point for every source up front; the loop keeps the
	// live cursors in memory and the store holds only committed positions.
	cursors := make(map[string]Cursor, len(collectors))
	for _, src := range forum.Sources {
		if cur, ok, err := cfg.Checkpoints.Load(src); err != nil {
			return nil, fmt.Errorf("smishkit: load checkpoint %s: %w", src, err)
		} else if ok {
			cursors[src] = cur
		}
	}

	// drainCtx survives ctx cancellation so a cancelled round finishes
	// processing and commits instead of tearing mid-batch; DrainTimeout per
	// round bounds the overstay.
	drainBase := context.WithoutCancel(ctx)
	lagGauges := make(map[string]*telemetry.Gauge, len(forum.Sources))
	for _, src := range forum.Sources {
		lagGauges[src] = reg.Gauge("collect.cursor_lag." + src)
	}
	setLag := func() {
		now := time.Now()
		for _, src := range forum.Sources {
			if cur, ok := cursors[src]; ok && !cur.Updated.IsZero() {
				lag := now.Sub(cur.Updated)
				if lag < 0 {
					lag = 0
				}
				lagGauges[src].Set(int64(lag / time.Second))
			}
		}
	}

	released := 0
	for round := 1; ; round++ {
		if cfg.LiveWaves > 0 && round > 1 && released < cfg.LiveWaves {
			if s.Sim.ReleaseWave() {
				released++
			}
		}

		info := RoundInfo{Round: round}
		sp := reg.StartSpan("serve.round")

		// Collect each forum as an independent atomic stage: a failing
		// collector contributes nothing this round and keeps its cursor.
		var batch []RawReport
		staged := make(map[string]Cursor, len(collectors))
		stagedN := make(map[string]int, len(collectors))
		for i, ic := range collectors {
			src := forum.Sources[i]
			var stage []RawReport
			next, err := ic.CollectSince(ctx, cursors[src], func(r RawReport) error {
				stage = append(stage, r)
				return nil
			})
			if err != nil {
				reg.Counter("collect." + src + ".errors").Inc()
				if info.Err == nil {
					info.Err = fmt.Errorf("smishkit: collect %s: %w", src, err)
				}
				continue
			}
			reg.Counter("collect." + src + ".new_reports").Add(int64(len(stage)))
			batch = append(batch, stage...)
			staged[src] = next
			stagedN[src] = len(stage)
		}

		if ctx.Err() != nil {
			// Cancelled mid-collection: the round never completed, so none
			// of its stages commit; a resumed daemon re-collects them.
			sp.End()
			break
		}

		// Process the round's batch and commit its cursors together. An
		// empty batch still commits: the cursors' Updated stamps are what
		// the lag gauges measure.
		collectedAt := time.Now()
		committed := true
		if len(batch) > 0 {
			procCtx, cancel := context.WithTimeout(drainBase, cfg.DrainTimeout)
			// Sharded studies route the round through per-shard workers (the
			// router scatters results back into curation order before the
			// commit, so durable-first ordering below is unchanged); the
			// unsharded path is the streaming pipeline as before.
			ds, err := s.runBatch(procCtx, batch)
			if err == nil && s.rlog != nil {
				// Durable-first commit ordering: the round's records reach
				// the fsynced log before the projection sees them and before
				// any cursor commits. A crash after the append re-collects at
				// most this round, and the log dedups the re-appended records
				// by ID — so the projection receives only the fresh subset.
				ds, err = s.rlog.Append(ds, collectedAt)
			}
			if err == nil {
				err = st.proj.Submit(procCtx, ds, collectedAt)
			}
			cancel()
			if err != nil {
				committed = false
				if info.Err == nil {
					info.Err = fmt.Errorf("smishkit: round %d: %w", round, err)
				}
			}
		}
		if committed {
			info.NewReports = len(batch)
			for src, cur := range staged {
				if err := cfg.Checkpoints.Save(cur); err != nil {
					if info.Err == nil {
						info.Err = fmt.Errorf("smishkit: save checkpoint %s: %w", src, err)
					}
					continue
				}
				cursors[src] = cur
			}
			st.commitCounts(stagedN, len(batch), time.Now())
		}
		setLag()
		st.roundHist.Observe(sp.End())

		st.mu.Lock()
		st.rounds = round
		st.mu.Unlock()
		info.Records = st.proj.Stats().Records
		if cfg.OnRound != nil {
			cfg.OnRound(info)
		}

		if cfg.MaxRounds > 0 && round >= cfg.MaxRounds {
			break
		}
		select {
		case <-ctx.Done():
		case <-time.After(cfg.PollInterval):
		}
		if ctx.Err() != nil {
			break
		}
	}

	// Graceful drain: flush every submitted batch into the projection.
	drainCtx, cancel := context.WithTimeout(drainBase, cfg.DrainTimeout)
	defer cancel()
	if err := st.proj.Wait(drainCtx); err != nil {
		return st.proj.Dataset(), fmt.Errorf("smishkit: drain projection: %w", err)
	}
	// A clean shutdown leaves a fresh snapshot, so the next open replays an
	// empty tail instead of the whole log.
	if s.rlog != nil {
		if err := s.rlog.Snapshot(); err != nil {
			return st.proj.Dataset(), fmt.Errorf("smishkit: final record-log snapshot: %w", err)
		}
	}
	return st.proj.Dataset(), nil
}

// incrementalCollectors returns the simulation's collectors as
// IncrementalCollectors, in forum.Sources order.
func (s *Study) incrementalCollectors() ([]forum.IncrementalCollector, error) {
	cols := s.Sim.Collectors()
	out := make([]forum.IncrementalCollector, 0, len(cols))
	for _, c := range cols {
		ic, ok := c.(forum.IncrementalCollector)
		if !ok {
			return nil, fmt.Errorf("smishkit: collector %s is not incremental", c.Name())
		}
		out = append(out, ic)
	}
	return out, nil
}
