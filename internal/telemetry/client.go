package telemetry

// ClientMetrics bundles the per-service instruments an HTTP API client
// records into: logical calls, terminal errors, retry attempts, 429
// rate-limit responses, and end-to-end call latency (including backoff).
// Instruments live in the originating Registry under
// "client.<service>.<metric>", so two clients instrumented with the same
// registry and service name share counts. A nil *ClientMetrics (or nil
// fields) discards everything.
type ClientMetrics struct {
	Calls       *Counter
	Errors      *Counter
	Retries     *Counter
	RateLimited *Counter
	Latency     *Histogram
}

// NewClientMetrics resolves the instrument set for one named service.
// Returns nil when reg is nil.
func NewClientMetrics(reg *Registry, service string) *ClientMetrics {
	if reg == nil {
		return nil
	}
	prefix := "client." + service + "."
	return &ClientMetrics{
		Calls:       reg.Counter(prefix + "calls"),
		Errors:      reg.Counter(prefix + "errors"),
		Retries:     reg.Counter(prefix + "retries"),
		RateLimited: reg.Counter(prefix + "rate_limited"),
		Latency:     reg.Histogram(prefix + "latency"),
	}
}
