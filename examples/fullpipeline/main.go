// Fullpipeline walks every stage of the paper's methodology explicitly:
// world generation, booting the forum and intelligence servers, per-forum
// collection over HTTP, screenshot extraction + curation, parallel
// enrichment, annotation, the Cohen's-kappa evaluation against ground
// truth (§3.4), and finally the report.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/smishkit/smishkit"
	"github.com/smishkit/smishkit/internal/annotate"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/enrichcache"
	"github.com/smishkit/smishkit/internal/forum"
	"github.com/smishkit/smishkit/internal/report"
)

func main() {
	log.SetFlags(0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Stage 0: the synthetic world (substituting real global SMS traffic).
	world := smishkit.GenerateWorld(smishkit.WorldConfig{Seed: 2024, Messages: 3000})
	fmt.Printf("world: %d messages in %d campaigns, %d phishing domains\n",
		len(world.Messages), len(world.Campaigns), len(world.Domains))

	// Stage 1: boot the five forums and six intelligence services.
	sim, err := core.StartSimulation(world)
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()
	fmt.Printf("forums up: twitter=%s smishtank=%s\n", sim.TwitterURL, sim.SmishtankURL)

	// Stage 2: collect over HTTP, forum by forum (§3.1).
	start := time.Now()
	reports, counts, err := forum.CollectAll(ctx, sim.Collectors())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d raw reports in %v:\n", len(reports), time.Since(start).Round(time.Millisecond))
	for f, n := range counts {
		fmt.Printf("  %-12s %d\n", f, n)
	}

	// Stage 3: extract + curate (§3.2), with the structured-vision rung.
	// The enrichment cache sits between the pipeline and the service
	// clients: 3000 messages collapse onto a few hundred distinct domains
	// and numbers, so most lookups are answered locally.
	cache := enrichcache.New(enrichcache.Config{ServeStale: true}, sim.Telemetry)
	pipe, err := core.NewPipeline(cache.WrapServices(sim.Services()), core.Options{
		Extractor:     smishkit.ExtractorStructuredVision,
		EnrichWorkers: 12,
		Telemetry:     sim.Telemetry,
	})
	if err != nil {
		log.Fatal(err)
	}
	ds := pipe.Curate(reports)
	fmt.Printf("curated %d records (decoys rejected: %d, empty: %d)\n",
		len(ds.Records), ds.DecoysRejected, ds.EmptyDropped)

	// Stage 4: enrichment fan-out (§3.3).
	start = time.Now()
	if err := pipe.Enrich(ctx, ds); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enriched in %v\n", time.Since(start).Round(time.Millisecond))

	// Stage 5: annotation (§3.3.6) — a parallel CPU stage, cancellable.
	if err := pipe.Annotate(ctx, ds); err != nil {
		log.Fatal(err)
	}

	// Stage 6: the §3.4 evaluation — compare annotations with the world's
	// ground truth over a sample, exactly the protocol of the paper's
	// 150-message golden set.
	truthByText := map[string]annotate.Annotation{}
	for _, m := range world.Messages {
		truthByText[m.Text] = annotate.Annotation{
			ScamType: m.ScamType, Language: m.Language, Brand: m.Brand, Lures: m.Lures,
		}
	}
	var golden, predicted []annotate.Annotation
	for _, r := range ds.Records {
		truth, ok := truthByText[r.Text]
		if !ok {
			continue
		}
		golden = append(golden, truth)
		predicted = append(predicted, r.Annotation)
		if len(golden) == 150 {
			break
		}
	}
	if agr, err := annotate.Evaluate(golden, predicted); err == nil {
		fmt.Printf("annotation agreement (n=%d): scam κ=%.2f brand κ=%.2f lure κ=%.2f lang κ=%.2f\n",
			agr.N, agr.ScamKappa, agr.BrandKappa, agr.LureKappa, agr.LangKappa)
	}

	// Stage 7: the paper's exhibits.
	if err := report.RenderAll(os.Stdout, ds); err != nil {
		log.Fatal(err)
	}

	// Stage 8: how the run behaved — stage spans, curation outcomes, and
	// per-service client latencies (also live at sim.DebugURL).
	// The layers were built by hand here (no Study), so assemble the Stats
	// value directly and render the same sections Study.Stats would.
	fmt.Println()
	stats := smishkit.Stats{Telemetry: sim.Telemetry.Snapshot(), Cache: cache.Stats()}
	if err := smishkit.WriteStats(os.Stdout, stats, smishkit.SectionTelemetry, smishkit.SectionCache); err != nil {
		log.Fatal(err)
	}
}
