package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKappaPerfectAgreement(t *testing.T) {
	a := []string{"banking", "delivery", "spam", "banking"}
	k, err := CohenKappa(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Errorf("kappa = %v, want 1", k)
	}
}

func TestKappaKnownValue(t *testing.T) {
	// Classic worked example: 2x2 table [[20,5],[10,15]] -> kappa = 0.4
	a := make([]string, 0, 50)
	b := make([]string, 0, 50)
	push := func(n int, la, lb string) {
		for i := 0; i < n; i++ {
			a = append(a, la)
			b = append(b, lb)
		}
	}
	push(20, "yes", "yes")
	push(5, "yes", "no")
	push(10, "no", "yes")
	push(15, "no", "no")
	k, err := CohenKappa(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-0.4) > 1e-12 {
		t.Errorf("kappa = %v, want 0.4", k)
	}
}

func TestKappaChanceLevel(t *testing.T) {
	// Independent raters: kappa should hover near 0.
	rng := rand.New(rand.NewSource(3))
	n := 20000
	a := make([]string, n)
	b := make([]string, n)
	labels := []string{"x", "y", "z"}
	for i := 0; i < n; i++ {
		a[i] = labels[rng.Intn(3)]
		b[i] = labels[rng.Intn(3)]
	}
	k, err := CohenKappa(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k) > 0.03 {
		t.Errorf("independent raters kappa = %v, want ~0", k)
	}
}

func TestKappaErrors(t *testing.T) {
	if _, err := CohenKappa([]string{"a"}, []string{"a", "b"}); err != ErrLengthMismatch {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
	if _, err := CohenKappa(nil, nil); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestKappaDegenerateConstant(t *testing.T) {
	a := []string{"same", "same", "same"}
	k, err := CohenKappa(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Errorf("constant identical raters kappa = %v, want 1", k)
	}
}

func TestKappaBounds(t *testing.T) {
	// Systematic disagreement drives kappa negative but never below -1.
	a := []string{"x", "x", "y", "y"}
	b := []string{"y", "y", "x", "x"}
	k, err := CohenKappa(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if k < -1 || k > 1 {
		t.Errorf("kappa = %v out of [-1,1]", k)
	}
	if k >= 0 {
		t.Errorf("total disagreement kappa = %v, want negative", k)
	}
}

func TestKappaBand(t *testing.T) {
	cases := []struct {
		k    float64
		want string
	}{
		{0.94, "near-perfect"},
		{0.7, "substantial"},
		{0.5, "moderate"},
		{0.3, "fair"},
		{0.1, "slight"},
		{-0.2, "poor"},
	}
	for _, c := range cases {
		if got := KappaBand(c.k); got != c.want {
			t.Errorf("KappaBand(%v) = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestMultiLabelKappaPerfect(t *testing.T) {
	a := [][]string{{"authority", "urgency"}, {"kindness"}, {}}
	k, err := MultiLabelKappa(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Errorf("multilabel kappa = %v, want 1", k)
	}
}

func TestMultiLabelKappaPartial(t *testing.T) {
	a := [][]string{{"authority"}, {"urgency"}, {"authority", "urgency"}, {"kindness"}}
	b := [][]string{{"authority"}, {"urgency"}, {"authority"}, {}}
	k, err := MultiLabelKappa(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if k <= 0 || k >= 1 {
		t.Errorf("partial agreement kappa = %v, want in (0,1)", k)
	}
}

func TestMultiLabelKappaErrors(t *testing.T) {
	if _, err := MultiLabelKappa([][]string{{"a"}}, nil); err != ErrLengthMismatch {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
	if _, err := MultiLabelKappa(nil, nil); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
	// All-empty annotations: no labels at all.
	if _, err := MultiLabelKappa([][]string{{}}, [][]string{{}}); err != ErrEmpty {
		t.Errorf("no-label err = %v, want ErrEmpty", err)
	}
}
