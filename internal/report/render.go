package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/stats"
	"github.com/smishkit/smishkit/internal/urlinfo"
)

// RenderAll writes every table and figure to w in reading order. The first
// write error aborts rendering and is returned, so callers writing to
// files or sockets see short writes instead of silently truncated reports.
func RenderAll(out io.Writer, ds *core.Dataset) error {
	ew := &errWriter{w: out}
	var w io.Writer = ew
	recs := ds.Records
	renderTable1(w, ds)
	renderCounter(w, "Table 3: phone number types", Table3(recs), 0)
	renderTable4(w, Table4(recs, 10))
	renderCrossTab(w, "Table 5: URL shorteners x scam type", Table5(recs), 10)
	landing, short := Table6(recs)
	renderCounter(w, "Table 6a: landing-URL TLDs", landing, 10)
	renderCounter(w, "Table 6b: shortened-URL TLDs", short, 10)
	renderTable7(w, Table7(recs, 10))
	renderTable8(w, Table8(recs, 10))
	renderTable9(w, Table9(recs))
	renderTable10(w, recs)
	renderCounter(w, "Others breakdown (§5.2 future work)", OthersBreakdown(recs), 0)
	renderCounter(w, "Table 11: languages", Table11(recs), 10)
	renderCounter(w, "Table 12: impersonated brands", Table12(recs), 10)
	renderCrossTab(w, "Table 13: lure principles x scam type", Table13(recs), 0)
	renderTable14(w, Table14(recs, 10))
	renderTable15(w, recs)
	renderTable16(w, recs)
	renderCounter(w, "Table 17: registrars", Table17(recs), 10)
	renderTable18(w, Table18(recs))
	renderFig2(w, Fig2(recs, true))
	renderFig3(w, Fig3(recs, 10))
	renderCounter(w, "Sender-ID kinds (§4.1)", SenderKinds(recs), 0)
	return ew.err
}

// errWriter latches the first write error and short-circuits later writes,
// letting the render helpers stay plain fmt.Fprintf calls.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}

func renderCounter(w io.Writer, title string, c *stats.Counter, topK int) {
	header(w, title)
	for _, e := range c.TopK(topK) {
		fmt.Fprintf(w, "  %-34s %6d (%5.1f%%)\n", e.Key, e.Count, e.Share*100)
	}
	fmt.Fprintf(w, "  total: %d\n", c.Total())
}

func renderTable1(w io.Writer, ds *core.Dataset) {
	header(w, "Table 1: dataset overview")
	fmt.Fprintf(w, "  %-12s %8s %8s %14s %14s %14s\n", "forum", "posts", "images", "texts(u/t)", "senders(u/t)", "urls(u/t)")
	for _, r := range Table1(ds) {
		fmt.Fprintf(w, "  %-12s %8d %8d %7d/%-6d %7d/%-6d %7d/%-6d\n",
			r.Forum, r.Posts, r.Images, r.UniqueTexts, r.TotalTexts,
			r.UniqueSender, r.TotalSender, r.UniqueURLs, r.TotalURLs)
	}
	fmt.Fprintf(w, "  decoys rejected: %d, empty dropped: %d\n", ds.DecoysRejected, ds.EmptyDropped)
}

func renderTable4(w io.Writer, rows []MNORow) {
	header(w, "Table 4: abused mobile network operators")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-22s %6d  %s\n", r.MNO, r.Numbers, strings.Join(r.Countries, ","))
	}
}

func renderCrossTab(w io.Writer, title string, ct *stats.CrossTab, topK int) {
	header(w, title)
	cols := []string{}
	for _, s := range corpus.ScamTypes {
		cols = append(cols, string(s))
	}
	fmt.Fprintf(w, "  %-16s %7s", "", "total")
	for _, c := range cols {
		fmt.Fprintf(w, " %9.9s", c)
	}
	fmt.Fprintln(w)
	for _, e := range ct.RowTotals().TopK(topK) {
		fmt.Fprintf(w, "  %-16s %7d", e.Key, e.Count)
		for _, c := range cols {
			fmt.Fprintf(w, " %9d", ct.Cell(e.Key, c))
		}
		fmt.Fprintln(w)
	}
}

func renderTable7(w io.Writer, rows []CARow) {
	header(w, "Table 7: TLS certificate authorities")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-26s %8d certs %6d domains\n", r.CA, r.Certificates, r.Domains)
	}
}

func renderTable8(w io.Writer, rows []ASRow) {
	header(w, "Table 8: hosting ASes")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-26s %5d IPs  %s\n", r.ASName, r.IPs, strings.Join(r.Countries, ","))
	}
}

func renderTable9(w io.Writer, res Table9Result) {
	header(w, "Table 9: VirusTotal detection")
	pct := func(n int) float64 {
		if res.URLs == 0 {
			return 0
		}
		return 100 * float64(n) / float64(res.URLs)
	}
	fmt.Fprintf(w, "  urls scanned: %d\n", res.URLs)
	fmt.Fprintf(w, "  undetected:   %d (%.1f%%)\n", res.Undetected, pct(res.Undetected))
	for _, k := range []int{1, 3, 5, 10, 15} {
		fmt.Fprintf(w, "  malicious>=%-2d %d (%.1f%%)\n", k, res.MaliciousGE[k], pct(res.MaliciousGE[k]))
	}
	for _, k := range []int{1, 3, 5} {
		fmt.Fprintf(w, "  suspicious>=%d %d (%.1f%%)\n", k, res.SuspiciousGE[k], pct(res.SuspiciousGE[k]))
	}
}

func renderTable10(w io.Writer, recs []core.Record) {
	c, langs := Table10(recs)
	header(w, "Table 10: scam categories")
	for _, e := range c.TopK(0) {
		fmt.Fprintf(w, "  %-14s %6d (%5.1f%%)  langs: %s\n", e.Key, e.Count, e.Share*100,
			strings.Join(langs[e.Key], ","))
	}
}

func renderTable14(w io.Writer, rows []CountryRow) {
	header(w, "Table 14: sender origin countries")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-5s %3d MNOs %6d numbers %6d live\n", r.Country, r.MNOs, r.Numbers, r.Live)
	}
}

func renderTable15(w io.Writer, recs []core.Record) {
	posts, images := Table15(recs, corpus.ForumTwitter)
	header(w, "Table 15: annual Twitter distribution")
	years := make([]int, 0, len(posts))
	for y := range posts {
		years = append(years, y)
	}
	sort.Ints(years)
	for _, y := range years {
		fmt.Fprintf(w, "  %d  %6d posts %6d images\n", y, posts[y], images[y])
	}
}

func renderTable16(w io.Writer, recs []core.Record) {
	urls, tlds := Table16(recs)
	header(w, "Table 16: IANA TLD classes")
	for _, e := range urls.TopK(0) {
		fmt.Fprintf(w, "  %-20s %6d urls (%5.1f%%) %4d TLDs\n", e.Key, e.Count, e.Share*100, tlds[tldClass(e.Key)])
	}
}

func renderTable18(w io.Writer, res Table18Result) {
	header(w, "Table 18: Google Safe Browsing")
	fmt.Fprintf(w, "  urls: %d\n", res.URLs)
	fmt.Fprintf(w, "  API unsafe: %d\n", res.APIUnsafe)
	fmt.Fprintf(w, "  transparency: unsafe=%d partial=%d nodata=%d undetected=%d blocked=%d\n",
		res.TRUnsafe, res.TRPartial, res.TRNoData, res.TRUndetect, res.TRBlocked)
}

func renderFig2(w io.Writer, res Fig2Result) {
	header(w, "Fig 2: send time-of-day by weekday")
	days := []time.Weekday{time.Monday, time.Tuesday, time.Wednesday, time.Thursday, time.Friday, time.Saturday, time.Sunday}
	for _, d := range days {
		s, ok := res.ByWeekday[d]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-9s n=%5d  min=%5.2f q1=%5.2f med=%5.2f q3=%5.2f max=%5.2f\n",
			d, s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max)
	}
	fmt.Fprintf(w, "  KS-significant weekday pairs: %d\n", len(res.SignificantPairs))
}

func renderFig3(w io.Writer, mix map[string]map[string]float64) {
	header(w, "Fig 3: scam mix per origin country")
	countries := make([]string, 0, len(mix))
	for c := range mix {
		countries = append(countries, c)
	}
	sort.Strings(countries)
	for _, c := range countries {
		fmt.Fprintf(w, "  %-5s", c)
		for _, scam := range corpus.ScamTypes {
			fmt.Fprintf(w, " %s=%4.1f%%", shortScam(string(scam)), mix[c][string(scam)]*100)
		}
		fmt.Fprintln(w)
	}
}

func shortScam(s string) string {
	if len(s) > 4 {
		return s[:4]
	}
	return s
}

// tldClass converts a counter key back to its typed class.
func tldClass(s string) urlinfo.TLDClass { return urlinfo.TLDClass(s) }
