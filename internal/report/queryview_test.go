package report

import (
	"encoding/csv"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/annotate"
	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/corpus"
)

func queryRecord(id, domain, sender string, postedAt time.Time) core.Record {
	return core.Record{
		ID:        id,
		Forum:     corpus.ForumTwitter,
		PostedAt:  postedAt,
		Domain:    domain,
		SenderRaw: sender,
		Text:      "test report " + id,
		Annotation: annotate.Annotation{
			ScamType: corpus.ScamDelivery,
			Brand:    "USPS",
		},
	}
}

// seedView builds the fixture the filter tests run against:
//
//	r1 evil.test     +15550000001  Jan 1   \
//	r2 evil.test     +15550000002  Jan 2    > one campaign (shared domain)
//	r3 other.test    +15550000002  Jan 3   /  (r3 joins via shared sender)
//	r4 LONE.test     ""            Jan 4   — its own campaign
//	r5 ""            +15550000009  Jan 5   — its own campaign
func seedView(t *testing.T) *QueryView {
	t.Helper()
	v := NewQueryView()
	day := func(d int) time.Time {
		return time.Date(2026, 1, d, 12, 0, 0, 0, time.UTC)
	}
	v.Add([]core.Record{
		queryRecord("r1", "evil.test", "+15550000001", day(1)),
		queryRecord("r2", "evil.test", "+15550000002", day(2)),
	})
	// Second batch exercises incremental clustering across Add calls.
	v.Add([]core.Record{
		queryRecord("r3", "other.test", "+15550000002", day(3)),
		queryRecord("r4", "LONE.test", "", day(4)),
		queryRecord("r5", "", "+15550000009", day(5)),
	})
	return v
}

func getReports(t *testing.T, srv *httptest.Server, query string) ReportsResult {
	t.Helper()
	resp, err := http.Get(srv.URL + "/query/reports" + query)
	if err != nil {
		t.Fatalf("GET %s: %v", query, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", query, resp.StatusCode)
	}
	var res ReportsResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decode %s: %v", query, err)
	}
	return res
}

func reportIDs(res ReportsResult) []string {
	out := make([]string, 0, len(res.Reports))
	for _, r := range res.Reports {
		out = append(out, r.ID)
	}
	return out
}

func sameIDs(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestQueryReportsFilters pins every /query/reports parameter at the HTTP
// level against the seeded fixture.
func TestQueryReportsFilters(t *testing.T) {
	v := seedView(t)
	mux := http.NewServeMux()
	mux.Handle("GET /query/reports", v.ReportsHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	cases := []struct {
		name  string
		query string
		want  []string
	}{
		{"no filter returns all, posted_at order", "", []string{"r1", "r2", "r3", "r4", "r5"}},
		{"domain", "?domain=evil.test", []string{"r1", "r2"}},
		{"domain is case-insensitive", "?domain=lone.TEST", []string{"r4"}},
		{"sender", "?sender=%2B15550000002", []string{"r2", "r3"}},
		{"domain AND sender intersect", "?domain=evil.test&sender=%2B15550000002", []string{"r2"}},
		{"campaign spans shared infrastructure", "?campaign=c-r1", []string{"r1", "r2", "r3"}},
		{"singleton campaign", "?campaign=c-r5", []string{"r5"}},
		{"since is inclusive", "?since=2026-01-03T12:00:00Z", []string{"r3", "r4", "r5"}},
		{"until is exclusive", "?until=2026-01-03T12:00:00Z", []string{"r1", "r2"}},
		{"since+until window", "?since=2026-01-02T00:00:00Z&until=2026-01-04T00:00:00Z", []string{"r2", "r3"}},
		{"no match is empty not error", "?domain=nothere.test", []string{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := getReports(t, srv, tc.query)
			if got := reportIDs(res); !sameIDs(got, tc.want) {
				t.Fatalf("GET %s -> %v, want %v", tc.query, got, tc.want)
			}
			if res.TotalMatched != len(tc.want) || res.Returned != len(tc.want) {
				t.Fatalf("GET %s -> total=%d returned=%d, want %d",
					tc.query, res.TotalMatched, res.Returned, len(tc.want))
			}
		})
	}

	t.Run("limit truncates but reports the full match count", func(t *testing.T) {
		res := getReports(t, srv, "?limit=2")
		if got := reportIDs(res); !sameIDs(got, []string{"r1", "r2"}) {
			t.Fatalf("limited IDs = %v", got)
		}
		if res.TotalMatched != 5 || res.Returned != 2 {
			t.Fatalf("total=%d returned=%d, want 5/2", res.TotalMatched, res.Returned)
		}
	})

	t.Run("campaign label is stable and attached to every report", func(t *testing.T) {
		res := getReports(t, srv, "?domain=evil.test")
		for _, r := range res.Reports {
			if r.Campaign != "c-r1" {
				t.Fatalf("report %s campaign = %q, want c-r1", r.ID, r.Campaign)
			}
		}
	})

	bad := []string{
		"?since=yesterday",
		"?until=not-a-time",
		"?limit=0",
		"?limit=-3",
		"?limit=many",
		"?bogus=1",
	}
	for _, q := range bad {
		resp, err := http.Get(srv.URL + "/query/reports" + q)
		if err != nil {
			t.Fatalf("GET %s: %v", q, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s -> status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestQuerySummary pins the roll-up shape: distinct counts, leaderboard
// ordering (count desc, name asc), and the top parameter.
func TestQuerySummary(t *testing.T) {
	v := seedView(t)
	mux := http.NewServeMux()
	mux.Handle("GET /query/summary", v.SummaryHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/query/summary")
	if err != nil {
		t.Fatalf("GET /query/summary: %v", err)
	}
	defer resp.Body.Close()
	var s Summary
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatalf("decode summary: %v", err)
	}
	if s.Records != 5 || s.Domains != 3 || s.Senders != 3 || s.Campaigns != 3 {
		t.Fatalf("summary counts = %+v, want records=5 domains=3 senders=3 campaigns=3", s)
	}
	if len(s.TopDomains) != 3 || s.TopDomains[0].Name != "evil.test" || s.TopDomains[0].Count != 2 {
		t.Fatalf("top domains = %+v", s.TopDomains)
	}
	if s.TopSenders[0].Name != "+15550000002" || s.TopSenders[0].Count != 2 {
		t.Fatalf("top senders = %+v", s.TopSenders)
	}
	if s.TopCampaigns[0].Name != "c-r1" || s.TopCampaigns[0].Count != 3 {
		t.Fatalf("top campaigns = %+v", s.TopCampaigns)
	}

	resp2, err := http.Get(srv.URL + "/query/summary?top=1")
	if err != nil {
		t.Fatalf("GET top=1: %v", err)
	}
	defer resp2.Body.Close()
	var s1 Summary
	if err := json.NewDecoder(resp2.Body).Decode(&s1); err != nil {
		t.Fatalf("decode top=1: %v", err)
	}
	if len(s1.TopDomains) != 1 || len(s1.TopSenders) != 1 || len(s1.TopCampaigns) != 1 {
		t.Fatalf("top=1 leaderboards = %d/%d/%d rows", len(s1.TopDomains), len(s1.TopSenders), len(s1.TopCampaigns))
	}
	// Distinct counts are unaffected by leaderboard truncation.
	if s1.Campaigns != 3 {
		t.Fatalf("top=1 campaigns = %d, want 3", s1.Campaigns)
	}
}

// TestQueryViewMergeOrderIndependence pins the union-find determinism
// claim: feeding the same records in a different batch order yields the
// same campaign labels and summary.
func TestQueryViewMergeOrderIndependence(t *testing.T) {
	day := func(d int) time.Time { return time.Date(2026, 2, d, 0, 0, 0, 0, time.UTC) }
	recs := []core.Record{
		queryRecord("x1", "a.test", "s1", day(1)),
		queryRecord("x2", "b.test", "s1", day(2)), // joins x1 via sender
		queryRecord("x3", "b.test", "s2", day(3)), // joins via domain
		queryRecord("x4", "c.test", "s9", day(4)), // separate campaign
	}
	forward := NewQueryView()
	forward.Add(recs)
	reversed := NewQueryView()
	for i := len(recs) - 1; i >= 0; i-- {
		reversed.Add([]core.Record{recs[i]})
	}
	sf, sr := forward.Summarize(0), reversed.Summarize(0)
	fj, _ := json.Marshal(sf)
	rj, _ := json.Marshal(sr)
	// Labels differ by insertion order? They must not: min record ID in a
	// cluster is order-free, and leaderboards sort deterministically.
	if string(fj) != string(rj) {
		t.Fatalf("summaries diverge by insertion order:\n%s\n%s", fj, rj)
	}
	got := forward.Reports(ReportsQuery{Campaign: "c-x1"})
	if got.TotalMatched != 3 {
		t.Fatalf("campaign c-x1 matched %d, want 3", got.TotalMatched)
	}
	if strings.HasPrefix(got.Reports[0].Campaign, "c-c") {
		t.Fatalf("unexpected campaign label %q", got.Reports[0].Campaign)
	}
}

// TestQueryReportsCursorPagination walks the seeded fixture with limit=2
// pages: every record is served exactly once, in (posted_at, id) order,
// and the final page carries no cursor.
func TestQueryReportsCursorPagination(t *testing.T) {
	v := seedView(t)
	mux := http.NewServeMux()
	mux.Handle("GET /query/reports", v.ReportsHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var walked []string
	cursor := ""
	for page := 0; ; page++ {
		if page > 10 {
			t.Fatal("pagination did not terminate")
		}
		q := "?limit=2"
		if cursor != "" {
			q += "&cursor=" + cursor
		}
		res := getReports(t, srv, q)
		walked = append(walked, reportIDs(res)...)
		if res.NextCursor == "" {
			if res.Returned == 2 && len(walked) < 5 {
				t.Fatalf("full page %d carried no cursor with records remaining", page)
			}
			break
		}
		if res.Returned != 2 {
			t.Fatalf("page %d: returned %d with a next cursor, want a full page of 2", page, res.Returned)
		}
		cursor = res.NextCursor
	}
	if !sameIDs(walked, []string{"r1", "r2", "r3", "r4", "r5"}) {
		t.Fatalf("cursor walk served %v, want every record once in order", walked)
	}

	// TotalMatched counts matches after the cursor, so it shrinks page by
	// page; the first page sees everything.
	first := getReports(t, srv, "?limit=2")
	if first.TotalMatched != 5 {
		t.Errorf("first page TotalMatched = %d, want 5", first.TotalMatched)
	}
	second := getReports(t, srv, "?limit=2&cursor="+first.NextCursor)
	if second.TotalMatched != 3 {
		t.Errorf("second page TotalMatched = %d, want 3 (matches after cursor)", second.TotalMatched)
	}

	// Cursor composes with filters: paging within a campaign.
	res := getReports(t, srv, "?campaign=c-r1&limit=1")
	if !sameIDs(reportIDs(res), []string{"r1"}) || res.NextCursor == "" {
		t.Fatalf("campaign page 1: %v cursor=%q", reportIDs(res), res.NextCursor)
	}
	res = getReports(t, srv, "?campaign=c-r1&limit=5&cursor="+res.NextCursor)
	if !sameIDs(reportIDs(res), []string{"r2", "r3"}) || res.NextCursor != "" {
		t.Fatalf("campaign page 2: %v cursor=%q", reportIDs(res), res.NextCursor)
	}

	// Malformed cursors are a client error, not a silent full restart.
	for _, bad := range []string{"not-base64!", "bm8tcGlwZQ", "MjAyNnxub3QtYS10aW1lfHg"} {
		resp, err := http.Get(srv.URL + "/query/reports?cursor=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("cursor %q -> status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestQueryReportsCSV pins the CSV export: content type, header row, one
// row per report, and the pagination cursor riding in X-Next-Cursor.
func TestQueryReportsCSV(t *testing.T) {
	v := seedView(t)
	mux := http.NewServeMux()
	mux.Handle("GET /query/reports", v.ReportsHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/query/reports?format=csv&limit=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Errorf("Content-Type = %q, want text/csv", ct)
	}
	next := resp.Header.Get("X-Next-Cursor")
	if next == "" {
		t.Error("truncated CSV page carries no X-Next-Cursor header")
	}
	rows, err := csv.NewReader(resp.Body).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("CSV has %d rows, want header + 3", len(rows))
	}
	if rows[0][0] != "id" || rows[0][9] != "text" {
		t.Errorf("CSV header = %v", rows[0])
	}
	if rows[1][0] != "r1" || rows[3][0] != "r3" {
		t.Errorf("CSV rows out of order: %v", rows)
	}

	// Resuming from the CSV cursor in JSON yields the rest — the two
	// formats share one pagination scheme.
	res := getReports(t, srv, "?limit=10&cursor="+next)
	if !sameIDs(reportIDs(res), []string{"r4", "r5"}) {
		t.Fatalf("resume after CSV page: %v", reportIDs(res))
	}

	// The last CSV page has no cursor header.
	resp2, err := http.Get(srv.URL + "/query/reports?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Next-Cursor"); got != "" {
		t.Errorf("final CSV page has X-Next-Cursor %q", got)
	}

	// Unknown formats and unknown parameters stay a 400.
	for _, q := range []string{"?format=xml", "?format=csv&bogus=1"} {
		resp, err := http.Get(srv.URL + "/query/reports" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s -> status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestCursorCodec pins the token round-trip and decode failure modes.
func TestCursorCodec(t *testing.T) {
	at := time.Date(2026, 1, 3, 12, 0, 0, 123456789, time.UTC)
	c := Cursor{PostedAt: at, ID: "r3"}
	got, err := DecodeCursor(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.PostedAt.Equal(at) || got.ID != "r3" {
		t.Errorf("round-trip = %+v, want %+v", got, c)
	}
	if (Cursor{}).IsZero() != true || c.IsZero() {
		t.Error("IsZero misreports")
	}
	for _, bad := range []string{"", "%%%", "bm9wZQ"} {
		if _, err := DecodeCursor(bad); err == nil {
			t.Errorf("DecodeCursor(%q) accepted garbage", bad)
		}
	}
}
