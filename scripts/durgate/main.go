// Command durgate is the CI durability gate: it proves, against the real
// smishctl binary, that SIGKILL costs the daemon nothing it had committed.
//
//	go run ./scripts/durgate [-out DIR] [-smishctl BIN]
//
// The sequence:
//
//  1. boot `smishctl -serve -data-dir` on a fresh data directory,
//  2. inject a synthetic wave through POST /inject,
//  3. wait until the daemon is quiescent (the /query/summary record count
//     is stable across several polls and the projection backlog is empty),
//  4. snapshot GET /query/summary, then SIGKILL the daemon — no drain, no
//     final snapshot, exactly the crash the record log exists for,
//  5. restart from the same data directory and wait for it to serve,
//  6. fail unless the restarted /query/summary matches the pre-kill
//     snapshot exactly AND /debug/telemetry shows zero backend enrichment
//     calls (client.<svc>.calls) in the restarted process.
//
// Exit 0 on pass, 1 on any failure. The data directory and both daemon
// logs are left under -out for artifact upload.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

// enrichmentServices are the backends the restarted daemon must never
// call: replayed records were enriched by the process that was killed.
var enrichmentServices = []string{"hlr", "whois", "ctlog", "dnsdb", "avscan", "shortener"}

const (
	worldSeed     = 11
	worldMessages = 1500
	injectSeed    = 7
	injectCount   = 300
	pollEvery     = 300 * time.Millisecond
	// stablePolls is how many consecutive unchanged record counts mean
	// "quiescent" — with a 150ms daemon poll interval this spans many
	// collection rounds.
	stablePolls = 8
	settleMax   = 3 * time.Minute
)

func main() {
	out := flag.String("out", "bench/durgate", "artifact directory (data dir + daemon logs)")
	bin := flag.String("smishctl", "", "smishctl binary (default: build into -out)")
	flag.Parse()
	if err := run(*out, *bin); err != nil {
		fmt.Fprintln(os.Stderr, "durability-gate: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("durability-gate: PASS")
}

func run(out, bin string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	dataDir := filepath.Join(out, "data")
	if err := os.RemoveAll(dataDir); err != nil {
		return fmt.Errorf("reset data dir: %w", err)
	}
	if bin == "" {
		bin = filepath.Join(out, "smishctl")
		fmt.Println("== building smishctl")
		build := exec.Command("go", "build", "-o", bin, "./cmd/smishctl")
		build.Stdout, build.Stderr = os.Stdout, os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("build smishctl: %w", err)
		}
	}

	// Phase 1: boot, inject, settle, snapshot, SIGKILL.
	fmt.Println("== phase 1: boot + inject + settle + SIGKILL")
	d1, err := startDaemon(bin, dataDir, filepath.Join(out, "daemon1.log"), filepath.Join(out, "status1"))
	if err != nil {
		return err
	}
	defer d1.kill()
	if err := inject(d1.url); err != nil {
		return fmt.Errorf("inject: %w", err)
	}
	preRecords, err := settle(d1.url)
	if err != nil {
		return fmt.Errorf("settle before kill: %w", err)
	}
	if preRecords == 0 {
		return fmt.Errorf("daemon settled with zero records; nothing to prove")
	}
	preSummary, err := canonicalSummary(d1.url)
	if err != nil {
		return fmt.Errorf("pre-kill summary: %w", err)
	}
	fmt.Printf("== pre-kill: %d records committed; sending SIGKILL\n", preRecords)
	if err := d1.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("SIGKILL: %w", err)
	}
	_ = d1.cmd.Wait()

	// Phase 2: restart from the same data dir; it must serve the identical
	// summary without a single enrichment call.
	fmt.Println("== phase 2: restart from the same -data-dir")
	d2, err := startDaemon(bin, dataDir, filepath.Join(out, "daemon2.log"), filepath.Join(out, "status2"))
	if err != nil {
		return err
	}
	defer d2.kill()
	if err := waitForRecords(d2.url, preRecords); err != nil {
		return fmt.Errorf("restarted daemon never reached %d records: %w", preRecords, err)
	}
	postSummary, err := canonicalSummary(d2.url)
	if err != nil {
		return fmt.Errorf("post-restart summary: %w", err)
	}
	if preSummary != postSummary {
		return fmt.Errorf("summary diverged across SIGKILL+restart:\n pre:  %s\n post: %s", preSummary, postSummary)
	}
	if err := assertZeroEnrichment(d2.url); err != nil {
		return err
	}
	fmt.Printf("== post-restart: summary identical (%d records), zero enrichment calls\n", preRecords)
	return nil
}

// daemon is one running smishctl -serve process.
type daemon struct {
	cmd *exec.Cmd
	url string
	log *os.File
}

func (d *daemon) kill() {
	if d.cmd.ProcessState == nil {
		_ = d.cmd.Process.Kill()
		_ = d.cmd.Wait()
	}
	_ = d.log.Close()
}

// startDaemon boots smishctl -serve -data-dir and waits for its status
// URL. LiveWaves are disabled: holdback waves released after injections
// land on the injection timeline, which a restarted simulation replays in
// a different order than the original cursors consumed.
func startDaemon(bin, dataDir, logPath, statusPath string) (*daemon, error) {
	_ = os.Remove(statusPath)
	logf, err := os.Create(logPath)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(bin,
		"-serve",
		"-seed", fmt.Sprint(worldSeed),
		"-messages", fmt.Sprint(worldMessages),
		"-live-waves", "0",
		"-poll-interval", "150ms",
		"-data-dir", dataDir,
		"-status-file", statusPath,
	)
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return nil, fmt.Errorf("start daemon: %w", err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if data, err := os.ReadFile(statusPath); err == nil && len(data) > 0 {
			return &daemon{cmd: cmd, url: strings.TrimSpace(string(data)), log: logf}, nil
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			logf.Close()
			tail, _ := os.ReadFile(logPath)
			return nil, fmt.Errorf("daemon never published a status URL; log:\n%s", tail)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func inject(base string) error {
	body := fmt.Sprintf(`{"seed": %d, "messages": %d}`, injectSeed, injectCount)
	resp, err := http.Post(base+"/inject", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return fmt.Errorf("POST /inject: status %d: %s", resp.StatusCode, buf.String())
	}
	return nil
}

func getJSON(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

type summary struct {
	Records int `json:"records"`
}

type status struct {
	Records        int     `json:"records"`
	PendingBatches int     `json:"pending_batches"`
	BacklogSeconds float64 `json:"backlog_seconds"`
}

// settle waits until the daemon is quiescent: the summary record count is
// non-decreasing, stable for stablePolls consecutive polls, and the
// projection reports no pending batches. Returns the settled count. A
// SIGKILL landing after this point interrupts nothing mid-enrichment, so
// every committed record must survive.
func settle(base string) (int, error) {
	deadline := time.Now().Add(settleMax)
	last, stable := -1, 0
	for time.Now().Before(deadline) {
		var s summary
		if err := getJSON(base+"/query/summary", &s); err != nil {
			return 0, err
		}
		var st status
		if err := getJSON(base+"/status", &st); err != nil {
			return 0, err
		}
		if s.Records == last && s.Records > 0 && st.PendingBatches == 0 && st.BacklogSeconds == 0 {
			stable++
			if stable >= stablePolls {
				return s.Records, nil
			}
		} else {
			stable = 0
		}
		last = s.Records
		time.Sleep(pollEvery)
	}
	return 0, fmt.Errorf("record count never stabilized (last %d)", last)
}

// waitForRecords polls until the summary reports exactly want records.
func waitForRecords(base string, want int) error {
	deadline := time.Now().Add(settleMax)
	last := -1
	for time.Now().Before(deadline) {
		var s summary
		if err := getJSON(base+"/query/summary", &s); err == nil {
			if s.Records == want {
				return nil
			}
			if s.Records > want {
				return fmt.Errorf("overshot: %d records, want %d — the replay double-counted", s.Records, want)
			}
			last = s.Records
		}
		time.Sleep(pollEvery)
	}
	return fmt.Errorf("timed out at %d records", last)
}

// canonicalSummary fetches /query/summary and re-marshals it so pre/post
// comparison is insensitive to HTTP-level formatting.
func canonicalSummary(base string) (string, error) {
	var raw json.RawMessage
	if err := getJSON(base+"/query/summary", &raw); err != nil {
		return "", err
	}
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return "", err
	}
	out, err := json.Marshal(v)
	return string(out), err
}

// assertZeroEnrichment reads /debug/telemetry counters and fails on any
// backend client call in this (restarted) process.
func assertZeroEnrichment(base string) error {
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := getJSON(base+"/debug/telemetry", &snap); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	var bad []string
	for _, svc := range enrichmentServices {
		if n := snap.Counters["client."+svc+".calls"]; n != 0 {
			bad = append(bad, fmt.Sprintf("client.%s.calls=%d", svc, n))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("restarted daemon re-enriched: %s", strings.Join(bad, " "))
	}
	if replayed := snap.Counters["recordlog.replayed"]; replayed == 0 {
		return fmt.Errorf("recordlog.replayed is 0 — the restart did not come from the log")
	}
	return nil
}
