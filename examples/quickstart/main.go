// Quickstart: generate a world, run the full measurement pipeline, print
// the paper's tables. Three calls, everything else is defaults.
package main

import (
	"context"
	"log"
	"os"

	"github.com/smishkit/smishkit"
)

func main() {
	study, err := smishkit.NewStudy(smishkit.Options{Seed: 42, Messages: 1500})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()

	ds, err := study.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	if err := smishkit.WriteReport(os.Stdout, ds); err != nil {
		log.Fatal(err)
	}
}
