package textnorm

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestFoldLowercases(t *testing.T) {
	if got := Fold("HSBC Alert"); got != "hsbc alert" {
		t.Errorf("Fold = %q", got)
	}
}

func TestFoldHomoglyphs(t *testing.T) {
	// Cyrillic Р/а and Greek ο
	if got := Fold("РayРal"); got != "paypal" {
		t.Errorf("Fold cyrillic = %q, want paypal", got)
	}
	if got := Fold("Amazοn"); got != "amazon" {
		t.Errorf("Fold greek = %q, want amazon", got)
	}
}

func TestFoldDiacritics(t *testing.T) {
	if got := Fold("Crédit Agricolé"); got != "credit agricole" {
		t.Errorf("Fold diacritics = %q", got)
	}
}

func TestFoldZeroWidth(t *testing.T) {
	input := "Net​flix" // zero width space inside brand
	if got := Fold(input); got != "netflix" {
		t.Errorf("Fold zero-width = %q, want netflix", got)
	}
}

func TestFoldFullwidth(t *testing.T) {
	if got := Fold("ｎｅｔｆｌｉｘ"); got != "netflix" {
		t.Errorf("Fold fullwidth = %q", got)
	}
}

func TestSkeletonLeet(t *testing.T) {
	cases := map[string]string{
		"N3tfl!x":   "netflix",
		"PayPa1":    "paypal",
		"Am4zon":    "amazon",
		"$antander": "santander",
	}
	for in, want := range cases {
		if got := Skeleton(in); got != want {
			t.Errorf("Skeleton(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSkeletonPreservesPureNumbers(t *testing.T) {
	// The reporting shortcode 7726 must not turn into "tte_", etc.
	if got := Skeleton("reply 7726 now"); got != "reply 7726 now" {
		t.Errorf("Skeleton = %q, numbers were mangled", got)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Your SBI account: verify at http://sbi-kyc.top now!")
	want := []string{"your", "sbi", "account", "verify", "at", "http", "sbi", "kyc", "top", "now"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("Tokenize = %v", got)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize("  ...  "); len(got) != 0 {
		t.Errorf("Tokenize punctuation = %v, want empty", got)
	}
}

func TestCollapseRepeats(t *testing.T) {
	if got := CollapseRepeats("heeeelp meee"); got != "heelp mee" {
		t.Errorf("CollapseRepeats = %q", got)
	}
	if got := CollapseRepeats("normal"); got != "normal" {
		t.Errorf("CollapseRepeats changed clean text: %q", got)
	}
}

func TestStripSpacingTricks(t *testing.T) {
	if got := StripSpacingTricks("P-a-y-P-a-l"); got != "PayPal" {
		t.Errorf("hyphen trick = %q", got)
	}
	if got := StripSpacingTricks("A m a z o n"); got != "Amazon" {
		t.Errorf("space trick = %q", got)
	}
	// hyphenated normal words survive
	if got := StripSpacingTricks("two-factor"); got != "two-factor" {
		t.Errorf("normal hyphen mangled: %q", got)
	}
}

// Property: Fold is idempotent.
func TestFoldIdempotentProperty(t *testing.T) {
	f := func(s string) bool {
		once := Fold(s)
		return Fold(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Skeleton is idempotent.
func TestSkeletonIdempotentProperty(t *testing.T) {
	f := func(s string) bool {
		once := Skeleton(s)
		return Skeleton(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Fold output is a ToLower fixed point with no zero-width runes.
func TestFoldOutputClean(t *testing.T) {
	f := func(s string) bool {
		for _, r := range Fold(s) {
			if unicode.ToLower(r) != r || zeroWidth[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Tokenize never returns tokens containing separators.
func TestTokenizeNoSeparators(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
