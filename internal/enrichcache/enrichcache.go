// Package enrichcache is the shared lookup-caching tier between the
// measurement pipeline and the six enrichment services. The paper's 27.7k
// messages collapse onto a far smaller set of campaigns, domains, and
// sender numbers, so the enrichment stage re-queries WHOIS, CT, passive
// DNS, HLR, AV, and shortener expansion for the same keys thousands of
// times; this layer makes each distinct key cost one upstream call.
//
// Per keyed lookup it provides:
//
//   - singleflight coalescing: concurrent workers asking for the same key
//     share one in-flight upstream call;
//   - a TTL + LRU bound per service, so entries age out and memory stays
//     capped under production-scale key cardinality;
//   - negative-result caching: WHOIS not-found, shortener takedowns, and
//     unrouted IPs are remembered (with a shorter TTL) instead of re-asked;
//   - an optional serve-stale degraded mode: when the upstream answers
//     with a 5xx after retries, an expired entry is served instead of
//     failing the record.
//
// Every decision increments hit/miss/coalesced/negative/stale/eviction
// counters in the study's telemetry registry under
// "cache.<service>.<metric>", so cache effectiveness shows up next to the
// client metrics it eliminates.
package enrichcache

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"

	"github.com/smishkit/smishkit/internal/netutil"
	"github.com/smishkit/smishkit/internal/telemetry"
)

// Config tunes the cache. The zero value is usable: every field falls
// back to the documented default.
type Config struct {
	// TTL bounds how long positive results are served (default 5m).
	TTL time.Duration
	// NegativeTTL bounds how long negative results (not-found, taken
	// down, no route) are served; shorter than TTL because absence is
	// more volatile than presence (default 1m).
	NegativeTTL time.Duration
	// MaxEntries caps each per-service LRU (default 4096 entries).
	MaxEntries int
	// ServeStale serves an expired entry when the upstream returns a 5xx
	// after the client's own retries — degraded but populated records
	// instead of an aborted run.
	ServeStale bool
	// PerService overrides the defaults for one service, keyed by the
	// service names used in telemetry: hlr, whois, ctlog, dnsdb, avscan,
	// shortener.
	PerService map[string]ServiceConfig
	// Clock overrides the time source (tests).
	Clock func() time.Time
}

// ServiceConfig overrides cache bounds for a single service. Zero fields
// inherit the Config-level value.
type ServiceConfig struct {
	TTL         time.Duration
	NegativeTTL time.Duration
	MaxEntries  int
}

func (c Config) withDefaults() Config {
	if c.TTL == 0 {
		c.TTL = 5 * time.Minute
	}
	if c.NegativeTTL == 0 {
		c.NegativeTTL = time.Minute
	}
	if c.MaxEntries == 0 {
		c.MaxEntries = 4096
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// forService resolves the effective bounds for one named service.
func (c Config) forService(name string) ServiceConfig {
	sc := c.PerService[name]
	if sc.TTL == 0 {
		sc.TTL = c.TTL
	}
	if sc.NegativeTTL == 0 {
		sc.NegativeTTL = c.NegativeTTL
	}
	if sc.MaxEntries == 0 {
		sc.MaxEntries = c.MaxEntries
	}
	return sc
}

// metrics is the per-service instrument bundle. All sub-caches of one
// service (e.g. avscan's scan/gsb/transparency tables) share one set.
type metrics struct {
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	coalesced *telemetry.Counter
	negatives *telemetry.Counter
	stale     *telemetry.Counter
	evictions *telemetry.Counter
}

func newMetrics(reg *telemetry.Registry, service string) *metrics {
	prefix := "cache." + service + "."
	return &metrics{
		hits:      reg.Counter(prefix + "hits"),
		misses:    reg.Counter(prefix + "misses"),
		coalesced: reg.Counter(prefix + "coalesced"),
		negatives: reg.Counter(prefix + "negative_hits"),
		stale:     reg.Counter(prefix + "stale_served"),
		evictions: reg.Counter(prefix + "evictions"),
	}
}

// entry is one cached result. A non-nil err is a cached negative result
// (e.g. shortener.ErrTakenDown) replayed to every hit until it expires.
type entry[V any] struct {
	key     string
	val     V
	err     error
	expires time.Time
}

// call is one in-flight upstream lookup that followers wait on.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// lookupCache is the generic engine: a singleflight-coalesced, TTL'd LRU
// over one key space. Safe for concurrent use.
type lookupCache[V any] struct {
	mu       sync.Mutex
	lru      *list.List // front = most recently used; values are *entry[V]
	entries  map[string]*list.Element
	inflight map[string]*call[V]

	ttl        time.Duration
	negTTL     time.Duration
	max        int
	serveStale bool
	now        func() time.Time

	// isNegErr marks errors worth caching (not-found-shaped); other
	// errors pass through uncached.
	isNegErr func(error) bool
	// isNegVal marks value-level negatives (e.g. WHOIS found=false) that
	// should age with NegativeTTL.
	isNegVal func(V) bool

	met *metrics
}

func newLookupCache[V any](sc ServiceConfig, serveStale bool, now func() time.Time, met *metrics) *lookupCache[V] {
	return &lookupCache[V]{
		lru:        list.New(),
		entries:    make(map[string]*list.Element),
		inflight:   make(map[string]*call[V]),
		ttl:        sc.TTL,
		negTTL:     sc.NegativeTTL,
		max:        sc.MaxEntries,
		serveStale: serveStale,
		now:        now,
		met:        met,
	}
}

// get returns the cached value for key, or resolves it through fn exactly
// once per expiry window no matter how many workers ask concurrently.
func (c *lookupCache[V]) get(ctx context.Context, key string, fn func(context.Context) (V, error)) (V, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry[V])
		if c.now().Before(e.expires) {
			c.lru.MoveToFront(el)
			c.met.hits.Inc()
			if e.err != nil || (c.isNegVal != nil && c.isNegVal(e.val)) {
				c.met.negatives.Inc()
			}
			val, err := e.val, e.err
			c.mu.Unlock()
			return val, err
		}
		// Expired: keep the entry around — serve-stale may need it.
	}
	if fl, ok := c.inflight[key]; ok {
		c.met.coalesced.Inc()
		c.mu.Unlock()
		select {
		case <-fl.done:
			return fl.val, fl.err
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
	}
	fl := &call[V]{done: make(chan struct{})}
	c.inflight[key] = fl
	c.met.misses.Inc()
	c.mu.Unlock()

	val, err := fn(ctx)

	c.mu.Lock()
	delete(c.inflight, key)
	switch {
	case err == nil:
		ttl := c.ttl
		if c.isNegVal != nil && c.isNegVal(val) {
			ttl = c.negTTL
		}
		c.store(key, val, nil, ttl)
	case c.isNegErr != nil && c.isNegErr(err):
		var zero V
		c.store(key, zero, err, c.negTTL)
	case c.serveStale && isUpstream5xx(err):
		if el, ok := c.entries[key]; ok {
			if e := el.Value.(*entry[V]); e.err == nil {
				c.lru.MoveToFront(el)
				c.met.stale.Inc()
				val, err = e.val, nil
			}
		}
	}
	fl.val, fl.err = val, err
	close(fl.done)
	c.mu.Unlock()
	return val, err
}

// store upserts an entry and enforces the LRU bound. Callers hold c.mu.
func (c *lookupCache[V]) store(key string, val V, err error, ttl time.Duration) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry[V])
		e.val, e.err, e.expires = val, err, c.now().Add(ttl)
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&entry[V]{key: key, val: val, err: err, expires: c.now().Add(ttl)})
	for c.max > 0 && c.lru.Len() > c.max {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*entry[V]).key)
		c.met.evictions.Inc()
	}
}

// len reports the live entry count (expired-but-unevicted included).
func (c *lookupCache[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// isUpstream5xx reports whether err is (or wraps) a 5xx API response —
// the upstream answered but is degraded, the case serve-stale covers.
// Transport errors and context cancellation stay hard failures.
func isUpstream5xx(err error) bool {
	var ae *netutil.APIError
	return errors.As(err, &ae) && ae.Status >= 500
}
