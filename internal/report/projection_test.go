package report

import (
	"context"
	"testing"
	"time"

	"github.com/smishkit/smishkit/internal/core"
	"github.com/smishkit/smishkit/internal/corpus"
	"github.com/smishkit/smishkit/internal/telemetry"
)

func batch(ids ...string) *core.Dataset {
	ds := &core.Dataset{
		PostsByForum:  map[corpus.Forum]int{corpus.ForumTwitter: len(ids)},
		ImagesByForum: map[corpus.Forum]int{},
		EmptyDropped:  1,
	}
	for _, id := range ids {
		ds.Records = append(ds.Records, core.Record{ID: id, Forum: corpus.ForumTwitter, Text: "msg " + id})
	}
	return ds
}

func TestProjectionMergesBatches(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := NewProjection(reg, 4)
	defer p.Close()
	ctx := context.Background()

	if err := p.Submit(ctx, batch("a", "b"), time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(ctx, batch("c"), time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	ds := p.Dataset()
	if len(ds.Records) != 3 {
		t.Fatalf("merged %d records, want 3", len(ds.Records))
	}
	if ds.PostsByForum[corpus.ForumTwitter] != 3 || ds.EmptyDropped != 2 {
		t.Fatalf("count maps not merged: %+v empty=%d", ds.PostsByForum, ds.EmptyDropped)
	}
	st := p.Stats()
	if st.Batches != 2 || st.Pending != 0 || st.Records != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BacklogSeconds != 0 {
		t.Fatalf("idle backlog = %v, want 0", st.BacklogSeconds)
	}
	if g := reg.Gauge("projection.backlog_seconds").Value(); g != 0 {
		t.Fatalf("backlog gauge = %d, want 0", g)
	}
	if c := reg.Counter("projection.batches").Value(); c != 2 {
		t.Fatalf("batches counter = %d, want 2", c)
	}

	// Snapshots are isolated from the live dataset.
	ds.Records[0].ID = "mutated"
	if p.Dataset().Records[0].ID != "a" {
		t.Fatal("Dataset returned an aliased snapshot")
	}
}

func TestProjectionCloseRejectsSubmit(t *testing.T) {
	p := NewProjection(nil, 2)
	if err := p.Submit(context.Background(), batch("x"), time.Now()); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if err := p.Submit(context.Background(), batch("y"), time.Now()); err == nil {
		t.Fatal("Submit after Close succeeded")
	}
	// The pre-close batch still made it in.
	if n := len(p.Dataset().Records); n != 1 {
		t.Fatalf("post-close dataset has %d records, want 1", n)
	}
}
