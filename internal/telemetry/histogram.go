package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// bucketBounds are the fixed upper bounds of the latency buckets, chosen to
// resolve both in-process stage work (tens of microseconds) and loopback
// HTTP round-trips with retry backoff (up to seconds). Observations above
// the last bound land in an overflow bucket.
var bucketBounds = [...]time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
}

const numBuckets = len(bucketBounds) + 1 // + overflow

// Histogram is a fixed-bucket latency histogram. Observations are
// allocation-free atomic adds; percentile summaries are computed at
// snapshot time by linear interpolation within the winning bucket.
// Construct through Registry.Histogram; a nil *Histogram discards
// observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; MaxInt64 until first observation
	max     atomic.Int64 // nanoseconds
	buckets [numBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	n := int64(d)
	h.count.Add(1)
	h.sum.Add(n)
	for {
		cur := h.min.Load()
		if n >= cur || h.min.CompareAndSwap(cur, n) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if n <= cur || h.max.CompareAndSwap(cur, n) {
			break
		}
	}
	h.buckets[bucketIndex(d)].Add(1)
}

func bucketIndex(d time.Duration) int {
	for i, bound := range bucketBounds {
		if d <= bound {
			return i
		}
	}
	return numBuckets - 1
}

// HistogramStats is the exported summary of one histogram.
type HistogramStats struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// Stats summarizes the histogram. Percentiles are estimates bounded by the
// bucket layout; Min and Max are exact.
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	var counts [numBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return HistogramStats{}
	}
	min := time.Duration(h.min.Load())
	max := time.Duration(h.max.Load())
	st := HistogramStats{
		Count: total,
		Sum:   time.Duration(h.sum.Load()),
		Min:   min,
		Max:   max,
	}
	st.Mean = st.Sum / time.Duration(total)
	st.P50 = clampDur(percentile(&counts, total, 0.50, max), min, max)
	st.P90 = clampDur(percentile(&counts, total, 0.90, max), min, max)
	st.P95 = clampDur(percentile(&counts, total, 0.95, max), min, max)
	st.P99 = clampDur(percentile(&counts, total, 0.99, max), min, max)
	return st
}

// percentile finds the bucket holding the q-th quantile observation and
// interpolates linearly inside it.
func percentile(counts *[numBuckets]int64, total int64, q float64, observedMax time.Duration) time.Duration {
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = bucketBounds[i-1]
		}
		hi := observedMax
		if i < len(bucketBounds) {
			hi = bucketBounds[i]
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return observedMax
}

func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
