//go:build race

package telemetry

// raceEnabled lets tests skip zero-allocation assertions under the race
// detector, whose instrumentation changes allocation behavior.
const raceEnabled = true
